// Pluggable tiling framework: the three-step plan() driver, the `model`
// backend (the paper's searches, re-homed from the old monolithic
// plan_for_checked), and the backend registry.

#include "rt/core/backend.hpp"

#include <string>
#include <utility>

#include "backend_builtin.hpp"
#include "plan_validate.hpp"
#include "rt/core/euc3d.hpp"
#include "rt/core/gcdpad.hpp"
#include "rt/core/pad.hpp"
#include "rt/core/square_tile.hpp"

namespace rt::core {

using rt::guard::Status;

PlanReport TilingBackend::plan(const PlanRequest& req) const {
  PlanReport rep;
  // The fallback plan every failure path returns: untiled, unpadded —
  // exactly what the unchecked plan_for silently degrades to.
  rep.plan.transform = req.transform;
  rep.plan.dip = req.di;
  rep.plan.djp = req.dj;
  rep.plan.backend = id();
  const TilingPlan fallback = rep.plan;

  std::string detail;
  Status s = select_strategy(req, &detail);
  if (s == Status::kOk) s = optimize_shape(req, &rep.plan, &detail);
  if (s != Status::kOk) {
    // kFellBackUntiled (and every harder failure) runs the fallback; a
    // partially-filled shape from a failing backend must not leak out.
    rep.plan = fallback;
    rep.status = s;
    rep.detail = std::move(detail);
    return rep;
  }
  rep.plan.schedule = schedule(req, rep.plan);

  // Overflow-checked allocation size for the planned (padded) dims: the
  // same product Dims3::checked_alloc_elems guards, checked here so the
  // caller learns before allocating (and without rt::core depending on
  // rt::array).
  long plane = 0, total = 0;
  if (__builtin_mul_overflow(rep.plan.dip, rep.plan.djp, &plane) ||
      (req.n3 > 0 && __builtin_mul_overflow(plane, req.n3, &total))) {
    rep.status = Status::kOverflow;
    rep.detail = "padded allocation size ";
    rep.detail += std::to_string(rep.plan.dip);
    rep.detail += "*";
    rep.detail += std::to_string(rep.plan.djp);
    if (req.n3 > 0) {
      rep.detail += "*";
      rep.detail += std::to_string(req.n3);
    }
    rep.detail += " overflows long";
  }
  return rep;
}

namespace {

/// The paper's planners (Euc3D/GcdPad/Pad/Tile) as a backend.  Strategy
/// selection always accepts — the model answers every Table 2 transform —
/// and the per-transform input validation lives in the shape step so the
/// typed reasons match the original monolithic planner byte for byte.
class ModelBackend final : public TilingBackend {
 public:
  Backend id() const override { return Backend::kModel; }

  Status select_strategy(const PlanRequest&, std::string*) const override {
    return Status::kOk;
  }

  Status optimize_shape(const PlanRequest& req, TilingPlan* plan,
                        std::string* detail) const override {
    const long cs = req.geom.cs_elems;
    const long di = req.di;
    const long dj = req.dj;
    const StencilSpec& spec = req.spec;
    switch (req.transform) {
      case Transform::kOrig: {
        // No tiling, no padding: only the halo matters (an interior must
        // exist for the kernel itself to be well-defined).
        if (di <= spec.trim_i || dj <= spec.trim_j) {
          *detail = "dimensions at or below the stencil halo";
          return Status::kInvalidArgument;
        }
        return Status::kOk;
      }
      case Transform::kTile: {
        const Status s =
            rt::core::detail::validate_tiling_inputs(cs, di, dj, spec, detail);
        if (s != Status::kOk) return s;
        const IterTile t = square_tile(cs, spec).tile;
        if (t.ti <= 0 || t.tj <= 0) {
          *detail = "square tile trims to nothing at cs = " +
                    std::to_string(cs) + "; running untiled";
          return Status::kFellBackUntiled;
        }
        plan->tiled = true;
        plan->tile = t;
        return Status::kOk;
      }
      case Transform::kEuc3d: {
        auto r = euc3d_checked(cs, di, dj, spec);
        if (!r.ok()) {
          // Invalid inputs stay invalid; an infeasible search is the
          // planner falling back to untiled execution — the case the
          // paper's tiles are meant to never silently hit.
          *detail = r.detail();
          return r.status() == Status::kInfeasible ? Status::kFellBackUntiled
                                                   : r.status();
        }
        plan->tiled = true;
        plan->tile = r.value().tile;
        return Status::kOk;
      }
      case Transform::kGcdPad:
      case Transform::kPad:
      case Transform::kGcdPadNT: {
        auto r = req.transform == Transform::kPad
                     ? pad_checked(cs, di, dj, spec)
                     : gcd_pad_checked(cs, di, dj, spec);
        if (!r.ok()) {
          *detail = r.detail();
          return r.status();
        }
        plan->dip = r.value().dip;
        plan->djp = r.value().djp;
        if (req.transform != Transform::kGcdPadNT) {
          plan->tiled = true;
          plan->tile = r.value().tile;
        }
        return Status::kOk;
      }
    }
    *detail = "unknown transform";
    return Status::kInvalidArgument;
  }

  LoopSchedule schedule(const PlanRequest&,
                        const TilingPlan& plan) const override {
    return plan.tiled ? LoopSchedule::kTiled : LoopSchedule::kFlat;
  }
};

}  // namespace

const TilingBackend* BackendRegistry::find(Backend id) const {
  for (const auto& b : backends_) {
    if (b->id() == id) return b.get();
  }
  return nullptr;
}

const TilingBackend* BackendRegistry::find(std::string_view name) const {
  for (const auto& b : backends_) {
    if (b->name() == name) return b.get();
  }
  return nullptr;
}

std::vector<Backend> BackendRegistry::ids() const {
  std::vector<Backend> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->id());
  return out;
}

void BackendRegistry::register_backend(std::unique_ptr<TilingBackend> b) {
  for (auto& e : backends_) {
    if (e->id() == b->id()) {
      e = std::move(b);
      return;
    }
  }
  backends_.push_back(std::move(b));
}

BackendRegistry& BackendRegistry::instance() {
  // Leaked singleton: backends are stateless, planning happens from
  // arbitrary threads (the solve server), and destruction order at exit
  // must not matter.  Registration after first use is test-only.
  static BackendRegistry* reg = [] {
    auto* r = new BackendRegistry;
    r->register_backend(std::make_unique<ModelBackend>());
    r->register_backend(rt::core::detail::make_lattice_backend());
    r->register_backend(rt::core::detail::make_oblivious_backend());
    return r;
  }();
  return *reg;
}

PlanReport plan_with_backend(Backend id, Transform transform,
                             const CacheGeom& geom, long di, long dj,
                             const StencilSpec& spec, long n3) {
  const TilingBackend* b = BackendRegistry::instance().find(id);
  if (b == nullptr) {
    PlanReport rep;
    rep.plan.transform = transform;
    rep.plan.dip = di;
    rep.plan.djp = dj;
    rep.plan.backend = id;
    rep.status = Status::kInvalidArgument;
    rep.detail =
        "no registered backend named " + std::string(backend_name(id));
    return rep;
  }
  return b->plan(PlanRequest{transform, geom, di, dj, n3, spec});
}

Backend auto_backend(const CacheGeom& geom) {
  return geom.probed ? Backend::kLattice : Backend::kOblivious;
}

}  // namespace rt::core
