#include "rt/core/square_tile.hpp"

#include <cmath>
#include <stdexcept>

namespace rt::core {

SquareTileResult square_tile(long cs, const StencilSpec& spec) {
  if (cs <= 0) throw std::invalid_argument("square_tile: cs must be positive");
  const long side = static_cast<long>(std::floor(
      std::sqrt(static_cast<double>(cs) / static_cast<double>(spec.atd))));
  SquareTileResult r;
  r.array_tile = ArrayTile{side, side, spec.atd};
  r.tile = IterTile{side - spec.trim_i, side - spec.trim_j};
  return r;
}

}  // namespace rt::core
