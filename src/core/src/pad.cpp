#include "rt/core/pad.hpp"

#include "rt/core/euc3d.hpp"

namespace rt::core {

PadPlan pad(long cs, long di, long dj, const StencilSpec& spec) {
  const PadPlan g = gcd_pad(cs, di, dj, spec);
  const double cost_star = cost(g.tile, spec);

  for (long dip = di; dip <= g.dip; ++dip) {
    for (long djp = dj; djp <= g.djp; ++djp) {
      const Euc3dResult r = euc3d(cs, dip, djp, spec);
      if (cost(r.tile, spec) <= cost_star) {
        return PadPlan{r.tile, dip, djp, r.array_tile};
      }
    }
  }
  // Unreachable when the guarantee holds (the GcdPad dims are in the search
  // space and their tile meets the threshold); kept as a safe fallback.
  return g;
}

}  // namespace rt::core
