#pragma once
// Internal (non-installed) declarations shared between checked.cpp and the
// planner backends: the input validators the checked search primitives and
// the model backend's strategy step both apply.

#include <string>

#include "rt/core/stencil_spec.hpp"
#include "rt/guard/status.hpp"

namespace rt::core::detail {

/// Shared input validation: the conditions under which *no* tiling
/// transform can answer.  Returns kOk when the inputs are askable.
rt::guard::Status validate_tiling_inputs(long cs, long di, long dj,
                                         const StencilSpec& spec,
                                         std::string* detail);

/// GCD-family validation on top of the shared rules (power-of-two cache,
/// cache at least the fixed tile depth).
rt::guard::Status validate_gcd_inputs(long cs, long di, long dj,
                                      const StencilSpec& spec,
                                      std::string* detail);

}  // namespace rt::core::detail
