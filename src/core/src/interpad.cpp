#include "rt/core/interpad.hpp"

#include <stdexcept>

#include "rt/core/pow2.hpp"

namespace rt::core {

InterPadPlan inter_pad(long cs, long di, long dj, const StencilSpec& spec,
                       int num_arrays) {
  if (num_arrays < 1) {
    throw std::invalid_argument("inter_pad: need at least one array");
  }
  InterPadPlan p;
  p.partitions = static_cast<int>(next_pow2(num_arrays));
  p.partition_elems = cs / p.partitions;
  if (p.partition_elems < 8) {
    throw std::invalid_argument("inter_pad: too many arrays for this cache");
  }
  // Tile for one partition; the gcd conditions against cs/P also hold
  // against cs (divisor of a power of two), so the tile is conflict-free
  // within its partition.
  p.intra = gcd_pad(p.partition_elems, di, dj, spec);
  p.base_offsets.reserve(static_cast<std::size_t>(num_arrays));
  for (int q = 0; q < num_arrays; ++q) {
    p.base_offsets.push_back(q * p.partition_elems);
  }
  return p;
}

}  // namespace rt::core
