// Associativity-lattice backend: conflict-aware tile selection for
// set-associative caches ("Model-Driven Automatic Tiling with Cache
// Associativity Lattices").  The paper's Euc3D search assumes a
// direct-mapped cache: it either over-restricts on associative hardware
// (tiny DM-safe tiles) or — via the capacity-only Tile transform —
// under-protects (rows of a power-of-two-strided tile land in the same set
// and thrash W ways).  This backend accepts exactly the tiles whose
// worst-case per-set line footprint fits the cache's ways, then picks the
// min-cost one under the paper's cost function.  No padding: dip/djp stay
// DI/DJ, so the plan composes with any allocation policy.

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "backend_builtin.hpp"
#include "plan_validate.hpp"
#include "rt/core/backend.hpp"
#include "rt/core/cost.hpp"

namespace rt::core {

namespace {

using rt::guard::Status;

/// (sets, ways, line) resolved from a CacheGeom with the degenerate cases
/// clamped: assoc = 0 means fully associative (one set, all lines are
/// ways); assoc >= lines likewise collapses to a single set.
struct SetGeom {
  long line_elems = 1;
  long sets = 1;
  long ways = 1;
};

SetGeom resolve_sets(const CacheGeom& g) {
  SetGeom sg;
  sg.line_elems = std::max<long>(1, g.line_elems);
  const long lines = std::max<long>(1, g.cs_elems / sg.line_elems);
  sg.ways = g.assoc == 0 ? lines : std::max<long>(1, std::min(g.assoc, lines));
  sg.sets = std::max<long>(1, lines / sg.ways);
  return sg;
}

}  // namespace

long lattice_worst_occupancy(const CacheGeom& geom, long dip, long djp,
                             long ati, long atj, int atd) {
  if (ati <= 0 || atj <= 0 || atd <= 0) return 0;
  const SetGeom sg = resolve_sets(geom);
  // Shifting the tile's base address by q*Le + b rotates every line index
  // by q (a set permutation that preserves per-set counts) and then
  // applies the intra-line phase b — so maximizing over b in [0, Le)
  // covers every base address the tile can start at.
  std::vector<long> counts(static_cast<size_t>(sg.sets));
  long worst = 0;
  for (long b = 0; b < sg.line_elems; ++b) {
    std::fill(counts.begin(), counts.end(), 0L);
    for (int k = 0; k < atd; ++k) {
      for (long j = 0; j < atj; ++j) {
        const long off = b + j * dip + k * dip * djp;
        const long l0 = off / sg.line_elems;
        const long l1 = (off + ati - 1) / sg.line_elems;
        for (long l = l0; l <= l1; ++l) {
          const long c = ++counts[static_cast<size_t>(l % sg.sets)];
          worst = std::max(worst, c);
        }
      }
    }
  }
  return worst;
}

namespace {

class LatticeBackend final : public TilingBackend {
 public:
  Backend id() const override { return Backend::kLattice; }

  Status select_strategy(const PlanRequest& req,
                         std::string* detail) const override {
    const StencilSpec& spec = req.spec;
    if (req.transform == Transform::kOrig) {
      // No tiling requested: pass through untiled, like the model.
      if (req.di <= spec.trim_i || req.dj <= spec.trim_j) {
        *detail = "dimensions at or below the stencil halo";
        return Status::kInvalidArgument;
      }
      return Status::kOk;
    }
    if (req.transform == Transform::kGcdPadNT) {
      *detail =
          "the lattice backend does not pad: GcdPadNT has no lattice plan";
      return Status::kInvalidArgument;
    }
    // Every tiling transform maps onto the same lattice search.
    return rt::core::detail::validate_tiling_inputs(
        req.geom.cs_elems, req.di, req.dj, spec, detail);
  }

  Status optimize_shape(const PlanRequest& req, TilingPlan* plan,
                        std::string* detail) const override {
    if (req.transform == Transform::kOrig) return Status::kOk;

    const StencilSpec& spec = req.spec;
    const SetGeom sg = resolve_sets(req.geom);
    const long max_ti = req.di - spec.trim_i;
    const long max_tj = req.dj - spec.trim_j;
    // Per-set occupancy <= ways across all sets already implies the tile
    // fits the cache (sum over sets <= sets*ways = lines); the explicit
    // capacity bound just prunes the search.
    const long cap = req.geom.cs_elems / std::max(1, spec.atd);

    IterTile best{0, 0};
    double best_cost = std::numeric_limits<double>::infinity();
    // Dense scan for small TJ, then geometric steps: the cost function is
    // smooth in TJ once TJ is large, and the occupancy constraint only
    // tightens, so coarse sampling of the tail loses nothing material.
    for (long tj = 1; tj <= max_tj; tj += tj <= 256 ? 1 : std::max<long>(1, tj / 4)) {
      const long atj = tj + spec.trim_j;
      if (atj > cap) break;
      const long hi =
          std::min(max_ti, cap / atj - spec.trim_i);  // iteration-tile TI
      if (hi < 1) continue;
      if (lattice_worst_occupancy(req.geom, req.di, req.dj, 1 + spec.trim_i,
                                  atj, spec.atd) > sg.ways) {
        continue;  // even a one-column tile of this height conflicts
      }
      // Occupancy is monotone in ATI (widening rows only adds lines), so
      // binary-search the widest feasible TI for this TJ.
      long lo = 1, feasible = 1, probe_hi = hi;
      while (lo <= probe_hi) {
        const long mid = lo + (probe_hi - lo) / 2;
        if (lattice_worst_occupancy(req.geom, req.di, req.dj,
                                    mid + spec.trim_i, atj,
                                    spec.atd) <= sg.ways) {
          feasible = mid;
          lo = mid + 1;
        } else {
          probe_hi = mid - 1;
        }
      }
      const double c = cost(feasible, tj, spec);
      if (c < best_cost) {
        best_cost = c;
        best = IterTile{feasible, tj};
      }
    }

    if (best.ti <= 0 || best.tj <= 0) {
      *detail = "lattice found no tile of depth " +
                std::to_string(spec.atd) + " with per-set occupancy <= " +
                std::to_string(sg.ways) + " ways for " +
                std::to_string(req.di) + "x" + std::to_string(req.dj) +
                "; running untiled";
      return Status::kFellBackUntiled;
    }
    plan->tiled = true;
    plan->tile = best;
    return Status::kOk;
  }

  LoopSchedule schedule(const PlanRequest&,
                        const TilingPlan& plan) const override {
    return plan.tiled ? LoopSchedule::kTiled : LoopSchedule::kFlat;
  }
};

}  // namespace

namespace detail {

std::unique_ptr<TilingBackend> make_lattice_backend() {
  return std::make_unique<LatticeBackend>();
}

}  // namespace detail

}  // namespace rt::core
