// Validated entry points for the tiling planner (rt::guard integration).
// The unchecked euc3d/gcd_pad/pad/plan_for keep their original contracts
// (throw on contract violation, or silently fall back); these wrappers
// validate first and return a typed reason instead, so callers can record
// *why* a configuration degraded rather than guessing from its shape.

#include <string>

#include "rt/core/euc3d.hpp"
#include "rt/core/gcdpad.hpp"
#include "rt/core/pad.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/pow2.hpp"
#include "rt/core/square_tile.hpp"

namespace rt::core {

namespace {

using rt::guard::Status;

/// Shared input validation: the conditions under which *no* tiling
/// transform can answer.  Returns kOk when the inputs are askable.
Status validate_tiling_inputs(long cs, long di, long dj,
                              const StencilSpec& spec, std::string* detail) {
  if (cs <= 0) {
    *detail = "cache size must be positive (cs = " + std::to_string(cs) + ")";
    return Status::kInvalidArgument;
  }
  if (spec.halo < 0) {
    *detail = "stencil halo must be >= 0 (halo = " +
              std::to_string(spec.halo) + ")";
    return Status::kInvalidArgument;
  }
  if (di <= spec.trim_i || dj <= spec.trim_j) {
    *detail = "dimensions " + std::to_string(di) + "x" + std::to_string(dj) +
              " at or below the stencil halo (" + std::to_string(spec.trim_i) +
              "," + std::to_string(spec.trim_j) + "): no interior to tile";
    return Status::kInvalidArgument;
  }
  if (cs < spec.atd) {
    *detail = "cache of " + std::to_string(cs) + " elements cannot hold " +
              std::to_string(spec.atd) + " planes of even one element";
    return Status::kInfeasible;
  }
  return Status::kOk;
}

/// GCD-family validation on top of the shared rules.
Status validate_gcd_inputs(long cs, long di, long dj, const StencilSpec& spec,
                           std::string* detail) {
  const Status s = validate_tiling_inputs(cs, di, dj, spec, detail);
  if (s != Status::kOk) return s;
  if (!is_pow2(cs)) {
    *detail = "GCD padding needs a power-of-two cache size (cs = " +
              std::to_string(cs) + ")";
    return Status::kInvalidArgument;
  }
  if (gcd_pad_tk(spec) > cs) {
    *detail = "cache of " + std::to_string(cs) +
              " elements smaller than the tile depth TK = " +
              std::to_string(gcd_pad_tk(spec));
    return Status::kInfeasible;
  }
  return Status::kOk;
}

}  // namespace

rt::guard::Expected<Euc3dResult> euc3d_checked(long cs, long di, long dj,
                                               const StencilSpec& spec) {
  std::string detail;
  const Status s = validate_tiling_inputs(cs, di, dj, spec, &detail);
  if (s != Status::kOk) return {s, std::move(detail)};
  Euc3dResult r = euc3d(cs, di, dj, spec);
  if (r.tile.ti <= 0 || r.tile.tj <= 0) {
    return {Status::kInfeasible,
            "Euc3D found no conflict-free tile of depth " +
                std::to_string(spec.atd) + " for " + std::to_string(di) + "x" +
                std::to_string(dj) + " in a " + std::to_string(cs) +
                "-element cache"};
  }
  return r;
}

rt::guard::Expected<PadPlan> gcd_pad_checked(long cs, long di, long dj,
                                             const StencilSpec& spec) {
  std::string detail;
  const Status s = validate_gcd_inputs(cs, di, dj, spec, &detail);
  if (s != Status::kOk) return {s, std::move(detail)};
  return gcd_pad(cs, di, dj, spec);
}

rt::guard::Expected<PadPlan> pad_checked(long cs, long di, long dj,
                                         const StencilSpec& spec) {
  std::string detail;
  const Status s = validate_gcd_inputs(cs, di, dj, spec, &detail);
  if (s != Status::kOk) return {s, std::move(detail)};
  return pad(cs, di, dj, spec);
}

PlanReport plan_for_checked(Transform transform, long cs, long di, long dj,
                            const StencilSpec& spec, long n3) {
  PlanReport rep;
  // The fallback plan every failure path returns: untiled, unpadded —
  // exactly what the unchecked plan_for silently degrades to.
  rep.plan.transform = transform;
  rep.plan.dip = di;
  rep.plan.djp = dj;

  const auto fail = [&rep](Status s, std::string detail) -> PlanReport& {
    rep.status = s;
    rep.detail = std::move(detail);
    return rep;
  };

  std::string detail;
  switch (transform) {
    case Transform::kOrig: {
      // No tiling, no padding: only the halo matters (an interior must
      // exist for the kernel itself to be well-defined).
      if (di <= spec.trim_i || dj <= spec.trim_j) {
        return fail(Status::kInvalidArgument,
                    "dimensions at or below the stencil halo");
      }
      break;
    }
    case Transform::kTile: {
      const Status s = validate_tiling_inputs(cs, di, dj, spec, &detail);
      if (s != Status::kOk) return fail(s, std::move(detail));
      const IterTile t = square_tile(cs, spec).tile;
      if (t.ti <= 0 || t.tj <= 0) {
        return fail(Status::kFellBackUntiled,
                    "square tile trims to nothing at cs = " +
                        std::to_string(cs) + "; running untiled");
      }
      rep.plan.tiled = true;
      rep.plan.tile = t;
      break;
    }
    case Transform::kEuc3d: {
      auto r = euc3d_checked(cs, di, dj, spec);
      if (!r.ok()) {
        // Invalid inputs stay invalid; an infeasible search is the planner
        // falling back to untiled execution — the case the paper's tiles
        // are meant to never silently hit.
        return fail(r.status() == Status::kInfeasible
                        ? Status::kFellBackUntiled
                        : r.status(),
                    r.detail());
      }
      rep.plan.tiled = true;
      rep.plan.tile = r.value().tile;
      break;
    }
    case Transform::kGcdPad:
    case Transform::kPad:
    case Transform::kGcdPadNT: {
      auto r = transform == Transform::kPad ? pad_checked(cs, di, dj, spec)
                                            : gcd_pad_checked(cs, di, dj, spec);
      if (!r.ok()) return fail(r.status(), r.detail());
      rep.plan.dip = r.value().dip;
      rep.plan.djp = r.value().djp;
      if (transform != Transform::kGcdPadNT) {
        rep.plan.tiled = true;
        rep.plan.tile = r.value().tile;
      }
      break;
    }
  }

  // Overflow-checked allocation size for the planned (padded) dims: the
  // same product Dims3::checked_alloc_elems guards, checked here so the
  // caller learns before allocating (and without rt::core depending on
  // rt::array).
  long plane = 0, total = 0;
  if (__builtin_mul_overflow(rep.plan.dip, rep.plan.djp, &plane) ||
      (n3 > 0 && __builtin_mul_overflow(plane, n3, &total))) {
    return fail(Status::kOverflow,
                "padded allocation size " + std::to_string(rep.plan.dip) +
                    "*" + std::to_string(rep.plan.djp) +
                    (n3 > 0 ? "*" + std::to_string(n3) : "") +
                    " overflows long");
  }
  return rep;
}

}  // namespace rt::core
