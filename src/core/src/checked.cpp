// Validated entry points for the tiling planner (rt::guard integration).
// The unchecked euc3d/gcd_pad/pad/plan_for keep their original contracts
// (throw on contract violation, or silently fall back); these wrappers
// validate first and return a typed reason instead, so callers can record
// *why* a configuration degraded rather than guessing from its shape.

#include <string>

#include "plan_validate.hpp"
#include "rt/core/backend.hpp"
#include "rt/core/euc3d.hpp"
#include "rt/core/gcdpad.hpp"
#include "rt/core/pad.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/pow2.hpp"
#include "rt/core/square_tile.hpp"

namespace rt::core {

using rt::guard::Status;

namespace detail {

Status validate_tiling_inputs(long cs, long di, long dj,
                              const StencilSpec& spec, std::string* detail) {
  if (cs <= 0) {
    *detail = "cache size must be positive (cs = " + std::to_string(cs) + ")";
    return Status::kInvalidArgument;
  }
  if (spec.halo < 0) {
    *detail = "stencil halo must be >= 0 (halo = " +
              std::to_string(spec.halo) + ")";
    return Status::kInvalidArgument;
  }
  if (di <= spec.trim_i || dj <= spec.trim_j) {
    *detail = "dimensions " + std::to_string(di) + "x" + std::to_string(dj) +
              " at or below the stencil halo (" + std::to_string(spec.trim_i) +
              "," + std::to_string(spec.trim_j) + "): no interior to tile";
    return Status::kInvalidArgument;
  }
  if (cs < spec.atd) {
    *detail = "cache of " + std::to_string(cs) + " elements cannot hold " +
              std::to_string(spec.atd) + " planes of even one element";
    return Status::kInfeasible;
  }
  return Status::kOk;
}

Status validate_gcd_inputs(long cs, long di, long dj, const StencilSpec& spec,
                           std::string* detail) {
  const Status s = validate_tiling_inputs(cs, di, dj, spec, detail);
  if (s != Status::kOk) return s;
  if (!is_pow2(cs)) {
    *detail = "GCD padding needs a power-of-two cache size (cs = " +
              std::to_string(cs) + ")";
    return Status::kInvalidArgument;
  }
  if (gcd_pad_tk(spec) > cs) {
    *detail = "cache of " + std::to_string(cs) +
              " elements smaller than the tile depth TK = " +
              std::to_string(gcd_pad_tk(spec));
    return Status::kInfeasible;
  }
  return Status::kOk;
}

}  // namespace detail

rt::guard::Expected<Euc3dResult> euc3d_checked(long cs, long di, long dj,
                                               const StencilSpec& spec) {
  std::string detail;
  const Status s =
      rt::core::detail::validate_tiling_inputs(cs, di, dj, spec, &detail);
  if (s != Status::kOk) return {s, std::move(detail)};
  Euc3dResult r = euc3d(cs, di, dj, spec);
  if (r.tile.ti <= 0 || r.tile.tj <= 0) {
    return {Status::kInfeasible,
            "Euc3D found no conflict-free tile of depth " +
                std::to_string(spec.atd) + " for " + std::to_string(di) + "x" +
                std::to_string(dj) + " in a " + std::to_string(cs) +
                "-element cache"};
  }
  return r;
}

rt::guard::Expected<PadPlan> gcd_pad_checked(long cs, long di, long dj,
                                             const StencilSpec& spec) {
  std::string detail;
  const Status s =
      rt::core::detail::validate_gcd_inputs(cs, di, dj, spec, &detail);
  if (s != Status::kOk) return {s, std::move(detail)};
  return gcd_pad(cs, di, dj, spec);
}

rt::guard::Expected<PadPlan> pad_checked(long cs, long di, long dj,
                                         const StencilSpec& spec) {
  std::string detail;
  const Status s =
      rt::core::detail::validate_gcd_inputs(cs, di, dj, spec, &detail);
  if (s != Status::kOk) return {s, std::move(detail)};
  return pad(cs, di, dj, spec);
}

PlanReport plan_for_checked(Transform transform, long cs, long di, long dj,
                            const StencilSpec& spec, long n3) {
  // Thin wrapper over the model backend (rt/core/backend.hpp): the paper's
  // searches only read the capacity, so the rest of the geometry is the
  // direct-mapped default.  Every historical call site transparently goes
  // through the pluggable framework this way.
  CacheGeom geom;
  geom.cs_elems = cs;
  return plan_with_backend(Backend::kModel, transform, geom, di, dj, spec, n3);
}

}  // namespace rt::core
