#include "rt/core/euc3d.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace rt::core {

namespace {

/// Fold the circular difference r (and its mirror cs - r) into gap g.
/// Returns the updated minimal gap; a zero difference means two offsets
/// coincide, i.e. gap 0.
long fold_gap(long g, long r, long cs) {
  if (r == 0) return 0;
  return std::min({g, r, cs - r});
}

}  // namespace

std::vector<ArrayTile> euc3d_enumerate(long cs, long di, long dj, int tk) {
  if (cs <= 0 || di <= 0 || dj <= 0 || tk <= 0) {
    throw std::invalid_argument("euc3d_enumerate: all parameters positive");
  }
  const long s = di % cs;             // column stride mod cache
  const long p = (di * dj) % cs;      // plane stride mod cache

  // Minimal circular gap among all pairwise offset differences
  //   (dk*p + dj_*s) mod cs,  |dk| < tk, |dj_| < tj.
  // Start at width tj = 1: only inter-plane differences dk = 1..tk-1.
  long g = cs;
  for (long dk = 1; dk < tk; ++dk) {
    g = fold_gap(g, (dk * p) % cs, cs);
    if (g == 0) return {};  // two plane offsets coincide: no tile of depth tk
  }

  std::vector<ArrayTile> out;
  // Widen one column at a time; record a Pareto entry whenever the next
  // width would shrink the feasible height.
  for (long tj = 1; tj <= cs + 1; ++tj) {
    // New differences when growing from width tj to tj+1: |dj_| = tj.
    long g_next = g;
    for (long dk = 0; dk < tk && g_next > 0; ++dk) {
      const long fwd = (dk * p + tj * s) % cs;
      g_next = fold_gap(g_next, fwd, cs);
      if (dk > 0 && g_next > 0) {
        long bwd = (dk * p - tj * s) % cs;
        if (bwd < 0) bwd += cs;
        g_next = fold_gap(g_next, bwd, cs);
      }
    }
    if (g_next < g) {
      out.push_back(ArrayTile{g, tj, tk});
      g = g_next;
      if (g == 0) break;
    }
  }
  return out;
}

Euc3dResult euc3d(long cs, long di, long dj, const StencilSpec& spec) {
  Euc3dResult best;
  best.tile_cost = std::numeric_limits<double>::infinity();
  for (const ArrayTile& at : euc3d_enumerate(cs, di, dj, spec.atd)) {
    const IterTile t{at.ti - spec.trim_i, at.tj - spec.trim_j};
    const double c = cost(t, spec);  // +inf when a trimmed dim is <= 0
    if (c < best.tile_cost) {
      best.tile_cost = c;
      best.tile = t;
      best.array_tile = at;
    }
  }
  return best;
}

}  // namespace rt::core
