#include "rt/core/cache_topology.hpp"

#include <algorithm>
#include <fstream>

namespace rt::core {

namespace {

/// First whitespace-trimmed token of @p path, or "" when unreadable.
std::string read_token(const std::string& path) {
  std::ifstream in(path);
  std::string tok;
  if (!(in >> tok)) return {};
  return tok;
}

/// Parse a sysfs size string ("32K", "1024K", "36M", "512") into bytes;
/// -1 on anything malformed.
long parse_size_bytes(const std::string& s) {
  if (s.empty()) return -1;
  long v = 0;
  std::size_t pos = 0;
  try {
    v = std::stol(s, &pos);
  } catch (...) {
    return -1;
  }
  if (v < 0) return -1;
  if (pos == s.size()) return v;
  if (pos + 1 != s.size()) return -1;
  switch (s[pos]) {
    case 'K': case 'k': return v * 1024;
    case 'M': case 'm': return v * 1024 * 1024;
    case 'G': case 'g': return v * 1024 * 1024 * 1024;
    default: return -1;
  }
}

/// Plain non-negative integer ("ways_of_associativity", line size); 0 when
/// missing or malformed (both mean "not exposed" to consumers).
long parse_long_or_zero(const std::string& s) {
  if (s.empty()) return 0;
  try {
    std::size_t pos = 0;
    const long v = std::stol(s, &pos);
    return (pos == s.size() && v > 0) ? v : 0;
  } catch (...) {
    return 0;
  }
}

}  // namespace

CacheTopology probe_cache_topology(const std::string& root) {
  CacheTopology topo;
  for (int idx = 0; idx < 16; ++idx) {
    const std::string dir = root + "/index" + std::to_string(idx);
    const std::string type = read_token(dir + "/type");
    if (type.empty()) {
      // sysfs presents index directories densely; the first missing one
      // ends the enumeration (and index0 missing means no tree at all).
      break;
    }
    CacheLevelInfo lvl;
    lvl.type = type == "Data" ? 'D' : type == "Instruction" ? 'I' : 'U';
    lvl.level = static_cast<int>(parse_long_or_zero(read_token(dir + "/level")));
    lvl.size_bytes = parse_size_bytes(read_token(dir + "/size"));
    if (lvl.level <= 0 || lvl.size_bytes <= 0) continue;  // malformed entry
    lvl.line_bytes = parse_long_or_zero(read_token(dir + "/coherency_line_size"));
    lvl.ways = parse_long_or_zero(read_token(dir + "/ways_of_associativity"));
    lvl.shared_cpus = read_token(dir + "/shared_cpu_map");
    topo.levels.push_back(std::move(lvl));
  }
  topo.probed = !topo.levels.empty();
  return topo;
}

long CacheTopology::outer_data_bytes() const {
  long best = 0;
  for (const CacheLevelInfo& l : levels) {
    if (l.type == 'I') continue;
    best = std::max(best, l.size_bytes);
  }
  return best > 0 ? best : 32L * 1024 * 1024;
}

long CacheTopology::line_bytes() const {
  // Innermost data/unified level with a known line size.
  int best_level = 0;
  long line = 0;
  for (const CacheLevelInfo& l : levels) {
    if (l.type == 'I' || l.line_bytes <= 0) continue;
    if (best_level == 0 || l.level < best_level) {
      best_level = l.level;
      line = l.line_bytes;
    }
  }
  return line > 0 ? line : 64;
}

std::string CacheTopology::fingerprint() const {
  if (!probed) return "unknown";
  // Stable order: (level, type) ascending, instruction caches excluded.
  std::vector<CacheLevelInfo> ls;
  for (const CacheLevelInfo& l : levels) {
    if (l.type != 'I') ls.push_back(l);
  }
  if (ls.empty()) return "unknown";
  std::sort(ls.begin(), ls.end(),
            [](const CacheLevelInfo& a, const CacheLevelInfo& b) {
              return a.level != b.level ? a.level < b.level : a.type < b.type;
            });
  std::string fp;
  for (const CacheLevelInfo& l : ls) {
    if (!fp.empty()) fp += '+';
    fp += 'L' + std::to_string(l.level) + l.type + ':' +
          std::to_string(l.size_bytes) + '/' +
          (l.ways > 0 ? std::to_string(l.ways) : "?") + "w/" +
          (l.line_bytes > 0 ? std::to_string(l.line_bytes) : "?") + 'B';
  }
  return fp;
}

const CacheTopology& host_cache_topology() {
  static const CacheTopology topo = probe_cache_topology();
  return topo;
}

}  // namespace rt::core
