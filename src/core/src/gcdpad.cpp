#include "rt/core/gcdpad.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rt/core/pow2.hpp"

namespace rt::core {

namespace {
/// Smallest odd multiple of t that is >= d: the paper's
///   Dp = 2t*floor((D + 3t - 1) / (2t)) - t        (Fig. 10)
long pad_to_odd_multiple(long d, long t) {
  return 2 * t * ((d + 3 * t - 1) / (2 * t)) - t;
}
}  // namespace

int gcd_pad_tk(const StencilSpec& spec) {
  return spec.atd <= 4 ? 4 : static_cast<int>(next_pow2(spec.atd));
}

PadPlan gcd_pad(long cs, long di, long dj, const StencilSpec& spec) {
  if (!is_pow2(cs)) {
    throw std::invalid_argument("gcd_pad: cache size must be a power of two");
  }
  if (di <= 0 || dj <= 0) {
    throw std::invalid_argument("gcd_pad: dimensions must be positive");
  }
  const long tk = gcd_pad_tk(spec);
  if (tk > cs) {
    throw std::invalid_argument("gcd_pad: cache smaller than tile depth");
  }
  // TI = smallest power of two >= sqrt(Cs/TK); TJ = Cs / (TK*TI).
  const long ti =
      next_pow2(static_cast<long>(std::ceil(std::sqrt(
          static_cast<double>(cs) / static_cast<double>(tk)))));
  const long tj = cs / (tk * ti);

  PadPlan p;
  p.array_tile = ArrayTile{ti, tj, static_cast<int>(tk)};
  // Trimming can swallow a tiny array tile whole (small cs vs. the trims);
  // a zero/negative iteration tile would make the tiled loops never
  // advance, so clamp both extents to 1 (a legal, if inefficient, tile).
  p.tile = IterTile{std::max(ti - spec.trim_i, 1L),
                    std::max(tj - spec.trim_j, 1L)};
  p.dip = pad_to_odd_multiple(di, ti);
  p.djp = pad_to_odd_multiple(dj, tj);
  return p;
}

}  // namespace rt::core
