#include "rt/core/tiling2d.hpp"

#include <cmath>
#include <stdexcept>

#include "rt/core/square_tile.hpp"

namespace rt::core {

namespace {
/// Tallest conflict-free tile of @p width columns (min circular gap of the
/// column-start offsets) — small helper mirroring euclid.cpp's model.
long max_height_for_width(long cs, long stride, long width) {
  return max_height_bruteforce(cs, stride, width);
}
}  // namespace

IterTile lrw_tile(long cs, long n) {
  if (cs <= 0 || n <= 0) throw std::invalid_argument("lrw_tile: bad args");
  // Scan square sides downward from sqrt(cs); O(sqrt(Cs)) probes as in the
  // original algorithm.
  for (long side = static_cast<long>(std::sqrt(static_cast<double>(cs)));
       side >= 1; --side) {
    if (max_height_for_width(cs, n, side) >= side) {
      return IterTile{side, side};
    }
  }
  return IterTile{1, 1};
}

IterTile esseghir_tile(long cs, long n) {
  if (cs <= 0 || n <= 0) {
    throw std::invalid_argument("esseghir_tile: bad args");
  }
  const long cols = cs / n;
  return IterTile{n, cols > 0 ? cols : 1};
}

Euc2dResult euc2d(long cs, long n) {
  Euc2dResult best;
  best.tile_cost = std::numeric_limits<double>::infinity();
  for (const WidthHeight& r : euc_pareto(cs, n)) {
    const IterTile t{r.height, r.width};
    const double c = cost2d(t);
    if (c < best.tile_cost) {
      best.tile_cost = c;
      best.tile = t;
      best.record = r;
    }
  }
  return best;
}

IterTile ecs_tile(long cs, double fraction, const StencilSpec& spec) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("ecs_tile: fraction must be in (0, 1]");
  }
  const long effective =
      std::max(1L, static_cast<long>(static_cast<double>(cs) * fraction));
  return square_tile(effective, spec).tile;
}

}  // namespace rt::core
