#include "rt/core/euclid.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace rt::core {

std::vector<WidthHeight> euc_pareto(long cs, long stride) {
  if (cs <= 0 || stride <= 0) {
    throw std::invalid_argument("euc_pareto: cs and stride must be positive");
  }
  std::vector<WidthHeight> out;
  long s = stride % cs;
  // The offset set {j*s mod cs} is the mirror image of {j*(cs-s) mod cs},
  // so both have identical circular-gap structure; canonicalising to
  // s <= cs/2 keeps the continued-fraction recurrence in its valid range.
  if (s > cs - s) s = cs - s;
  // One column can always occupy the whole cache.
  out.push_back({1, cs});
  if (s == 0) {
    // Every column maps to the same offset: a single-column tile is all
    // there is.
    return out;
  }
  // Continued-fraction recurrence.  Heights follow the Euclidean remainder
  // sequence h_{k+1} = h_{k-1} mod h_k starting from (cs, s); widths follow
  // the convergent-denominator recurrence
  //   w_{k+1} = w_k * floor(h_k / h_{k+1}) + w_{k-1}.
  long h_prev = cs, w_prev = 1;
  long h_cur = s, w_cur = cs / s;
  out.push_back({w_cur, h_cur});
  while (h_prev % h_cur != 0) {
    const long h_next = h_prev % h_cur;
    const long w_next = w_cur * (h_cur / h_next) + w_prev;
    out.push_back({w_next, h_next});
    h_prev = h_cur;
    w_prev = w_cur;
    h_cur = h_next;
    w_cur = w_next;
  }
  return out;
}

long max_height_bruteforce(long cs, long stride, long width) {
  assert(cs > 0 && stride > 0 && width > 0);
  std::vector<long> pts;
  pts.reserve(static_cast<std::size_t>(width));
  for (long j = 0; j < width; ++j) {
    pts.push_back((j * (stride % cs)) % cs);
  }
  std::sort(pts.begin(), pts.end());
  if (width == 1) return cs;
  long min_gap = cs - pts.back() + pts.front();  // wrap-around gap
  for (std::size_t i = 1; i < pts.size(); ++i) {
    min_gap = std::min(min_gap, pts[i] - pts[i - 1]);
  }
  return min_gap;  // 0 if two columns coincide
}

}  // namespace rt::core
