#pragma once
// Internal (non-installed) factories for the built-in planner backends that
// live in their own translation units; BackendRegistry::instance()
// pre-registers them.

#include <memory>

namespace rt::core {
class TilingBackend;
}

namespace rt::core::detail {

std::unique_ptr<TilingBackend> make_lattice_backend();
std::unique_ptr<TilingBackend> make_oblivious_backend();

}  // namespace rt::core::detail
