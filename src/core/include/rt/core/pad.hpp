#pragma once
// Pad (paper Fig. 11): search array pads no larger than GcdPad's, running
// Euc3D on each padded size, and accept the first tile whose cost is at
// most GcdPad's cost.  Padding overhead is therefore always <= GcdPad's
// (Section 3.4.2); a tile must be found because the search space includes
// the GcdPad dimensions themselves.

#include "rt/core/gcdpad.hpp"

namespace rt::core {

PadPlan pad(long cs, long di, long dj, const StencilSpec& spec);

/// Validated pad(): same input contract (and failure reasons) as
/// gcd_pad_checked — Pad's search space is bounded by GcdPad's plan, so an
/// input GcdPad rejects is unanswerable for Pad too.
rt::guard::Expected<PadPlan> pad_checked(long cs, long di, long dj,
                                         const StencilSpec& spec);

}  // namespace rt::core
