#pragma once
// Temporal-blocking planner: the validated entry point that sizes a
// time-skewed or diamond-wavefront execution of the ping-pong Jacobi
// kernel (rt/kernels/timeskew.hpp, executed by rt::temporal).
//
// Spatial tiling (the paper's contribution) exploits reuse *within* one
// sweep; temporal blocking keeps a window of K planes cache-resident
// across T sweeps, cutting memory traffic by up to T — the paper's stated
// future work (Section 2.1, Song & Li / Wonnacott) and the regime where
// the Malas-style diamond schedule beats spatial par+simd (memory-bound
// large N).  Two schedules are planned here:
//
//  * kSkew — slope-1 skewed K blocks: plane p's step-t update runs in the
//    block containing p + t; blocks run serially in ascending K, planes of
//    one (block, t) stage are independent (wavefront parallelism).
//  * kDiamond — two-phase diamond wavefront: phase 1 runs per-block
//    descending triangles (steps t cover the planes whose offset within
//    the block lies in [t, W-1-t]) which are fully independent across
//    blocks; after a barrier, phase 2 fills the inverted triangles at the
//    block boundaries.  With W >= 2*tb every concurrent work unit touches
//    a disjoint plane set, so per-diamond thread teams can run the whole
//    tb-step pass with no global synchronisation inside a phase.
//
// Like plan_for_checked, this never throws and never silently clamps: a
// degraded request (cache window too small, width below the diamond
// minimum, non-positive threads) is recorded as a typed rt::guard status
// with a still-usable plan, so benches route it into a recorded skipped
// row instead of printing a misleading data point.

#include <string>

#include "rt/guard/status.hpp"

namespace rt::core {

/// Requested temporal-blocking schedule (the --temporal= flag).
enum class TemporalMode {
  kOff,      ///< no temporal blocking (plain per-sweep execution)
  kSkew,     ///< slope-1 skewed K blocks (rt::kernels::jacobi3d_timeskew)
  kDiamond,  ///< two-phase diamond wavefront with thread teams
};

/// Stable token ("off", "skew", "diamond").
const char* temporal_mode_name(TemporalMode m);
bool parse_temporal_mode(const std::string& s, TemporalMode* out);

/// Concrete temporal-blocking decision for one (mode, shape, tsteps,
/// threads) request — the temporal analogue of TilingPlan.
struct TemporalPlan {
  TemporalMode mode = TemporalMode::kOff;
  int tsteps = 0;  ///< time steps the plan covers
  long bk = 0;     ///< K-block depth (kSkew) / diamond width W (kDiamond)
  int tb = 0;      ///< steps fused per diamond pass, <= bk/2 (0 for kSkew)
  int threads = 1; ///< total execution width
  int team = 1;    ///< threads per diamond team (1 for kSkew)
  /// Scheduled (window, step) sweeps with a nonempty plane range.
  long stages = 0;
  /// Mean fraction of the execution width with a plane (kSkew) or a work
  /// unit (kDiamond) to run, over all scheduled steps — the wavefront
  /// occupancy the JSON "temporal" block reports.
  double occupancy = 0.0;
};

/// temporal_plan() plus the typed reason for any degradation; `plan` is
/// always usable (clamped to the nearest valid configuration), `status`
/// says what actually happened:
///   kOk               the request is planned as asked
///   kInvalidArgument  mode off, tsteps < 0, no interior, cs <= 0,
///                     threads < 1, bk < 0, or a diamond width below 2
///   kInfeasible       valid inputs, but the requested/auto window cannot
///                     be cache-resident (the plan still runs correctly)
///   kOverflow         a working-set size computation overflows long
struct TemporalReport {
  TemporalPlan plan;
  rt::guard::Status status = rt::guard::Status::kOk;
  std::string detail;  ///< human-readable reason when status != kOk
  bool ok() const { return status == rt::guard::Status::kOk; }
};

/// Validated temporal planner for an n1 x n2 x n3 ping-pong Jacobi grid.
/// @param cs       target cache capacity in elements (the level that holds
///                 the plane window — L2/L3, not the planner's L1)
/// @param tsteps   time steps to fuse
/// @param bk       requested block depth / diamond width; 0 = auto-size
///                 from cs (the skew window keeps ~(bk + tsteps + 2)
///                 planes of both arrays live; the diamond keeps ~2*W)
/// @param threads  requested execution width (teams * team for kDiamond)
/// @param halo     stencil radius (boundary layers per side; 1 for Jacobi)
TemporalReport temporal_plan_checked(TemporalMode mode, long cs, long n1,
                                     long n2, long n3, int tsteps, long bk,
                                     int threads, long halo = 1);

}  // namespace rt::core
