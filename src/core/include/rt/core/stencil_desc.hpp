#pragma once
// Stencil descriptors: the "compiler front-end" of the library.  The paper
// notes (Section 2.3) that "compilers can derive such a cost function
// directly from the loop nest" — the trim amounts m, n are the magnitudes
// of the largest subscript differences per dimension, and the array tile
// depth is the K-extent of the reference window.  A StencilDesc is that
// reference window, from which derive_spec() computes the StencilSpec the
// planner needs; rt::kernels::apply_stencil executes any descriptor.

#include <string>
#include <vector>

#include "rt/core/stencil_spec.hpp"

namespace rt::core {

/// One array reference: offset from the loop indices plus a coefficient.
struct StencilPoint {
  int di = 0;  ///< offset in the fastest (I) dimension
  int dj = 0;
  int dk = 0;
  double w = 0.0;  ///< coefficient applied to this neighbour
  friend constexpr bool operator==(const StencilPoint&,
                                   const StencilPoint&) = default;
};

/// A full stencil: out(i,j,k) = sum_q w_q * in(i+di_q, j+dj_q, k+dk_q).
struct StencilDesc {
  std::string name = "stencil";
  std::vector<StencilPoint> points;

  /// Halo extent (max |offset| reach) in each direction; used to derive
  /// trim amounts and array tile depth exactly as Section 2.3 prescribes.
  StencilSpec derive_spec() const;

  /// Number of source references per output point.
  std::size_t arity() const { return points.size(); }

  // --- the paper's stencils, as descriptors ---
  /// 6-point Jacobi: w on each of the six faces.
  static StencilDesc jacobi6(double w = 1.0 / 6.0);
  /// Full 27-point stencil with class coefficients (centre, face, edge,
  /// corner) — RESID's A operator and PSINV's S operator have this shape.
  static StencilDesc full27(double c0, double c1, double c2, double c3,
                            std::string name = "full27");
};

}  // namespace rt::core
