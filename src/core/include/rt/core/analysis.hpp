#pragma once
// Analytical L1 miss-rate prediction for the realistic 3D Jacobi pattern
// (stencil + copy-back), derived exactly the way the paper's Section 1
// reasons about reuse:
//
//  * if two N x N planes fit in cache, only the leading reference
//    B(i,j,k+1) misses (once per line);
//  * if planes do not fit but the three active columns do, the three
//    plane-leading references miss (B(i,j,k+1), B(i,j+1,k), B(i,j,k-1)),
//    i.e. 3/L misses per point;
//  * a JI-tiled loop with iteration tile T fetches Cost(T) elements of B
//    per point (Section 2.3), i.e. Cost(T)/L misses per point;
//  * stores to A always miss a write-around cache (1 per point), the
//    copy-back loop adds a read of A (1/L) and a store to B (1).
//
// These closed forms reproduce the simulator's plateaus (33.4% untiled,
// ~29% tiled for L = 4) and are validated against it in the tests and in
// bench_analysis.

#include "rt/core/cost.hpp"
#include "rt/core/stencil_spec.hpp"

namespace rt::core {

struct JacobiPrediction {
  double b_misses_per_point = 0;  ///< read misses on the stencil array
  double misses_per_point = 0;    ///< all misses (stencil + copy-back)
  double accesses_per_point = 9;  ///< 7 stencil + 2 copy-back
  double l1_miss_pct = 0;
};

/// Predict the untiled realistic Jacobi's L1 behaviour.
/// @param cs_elems    cache capacity in elements
/// @param line_elems  cache line size in elements
/// @param n           lower array dimensions (N x N x K)
JacobiPrediction predict_jacobi3d_orig(long cs_elems, long line_elems,
                                       long n);

/// Predict the JI-tiled realistic Jacobi with iteration tile @p t
/// (assuming the tile is conflict-free, i.e. post-Euc3D/GcdPad/Pad).
JacobiPrediction predict_jacobi3d_tiled(long line_elems, const IterTile& t,
                                        const StencilSpec& spec);

}  // namespace rt::core
