#pragma once
// Intra-array padding for 2D stencil codes (paper Section 2.1: 2D codes
// rarely need tiling, "though in some cases array padding may be necessary
// to preserve group reuse", citing the authors' PLDI'98 padding work).
//
// A 2D stencil keeps a small window of w adjacent columns live; group
// reuse between them survives unless two of the active column *windows*
// alias in the cache — which happens when j*DI mod Cs lands within a few
// cache lines of 0 for some 0 < j < w (e.g. DI = 1024 in a 2048-element
// cache makes columns j-1 and j+1 alias exactly).  pad2d finds the
// smallest leading-dimension pad that pushes every active column at least
// `guard` elements away from its neighbours.

namespace rt::core {

/// Smallest DIp >= di such that for all 0 < j < window_cols, the circular
/// distance of j*DIp mod cs from 0 is at least `guard` elements.
/// Throws std::invalid_argument on impossible requests (e.g. guard too
/// large for the window count).
long pad2d(long cs, long di, long window_cols, long guard);

/// True if dimension `di` already satisfies the criterion above.
bool columns_well_spaced(long cs, long di, long window_cols, long guard);

}  // namespace rt::core
