#pragma once
// Cross-interference handling via inter-variable padding (paper
// Section 3.5, second strategy): obtain a non-conflicting array tile, then
// *partition* the cache between the kernel's arrays — shrink the tile to a
// 1/P cache partition and pad the gaps between array base addresses so that
// corresponding elements of different arrays map to different partitions.
//
// Because all arrays of a kernel share dimensions and loop indices, their
// active windows wander through the cache together; fixing the pairwise
// base-address distance (mod cache size) keeps the partitions disjoint for
// the whole sweep.

#include <vector>

#include "rt/core/gcdpad.hpp"

namespace rt::core {

struct InterPadPlan {
  /// Intra-array plan (tile + padded dims) computed for one partition.
  PadPlan intra;
  /// Number of equal cache partitions (next power of two >= num_arrays).
  int partitions = 1;
  /// Partition size in elements (= cs / partitions).
  long partition_elems = 0;
  /// Required base-address offset (elements, mod cs) for each array.
  std::vector<long> base_offsets;
};

/// Partition a direct-mapped cache of @p cs elements among @p num_arrays
/// arrays of a kernel over di x dj x M arrays described by @p spec.
InterPadPlan inter_pad(long cs, long di, long dj, const StencilSpec& spec,
                       int num_arrays);

}  // namespace rt::core
