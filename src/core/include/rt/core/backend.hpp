#pragma once
// Pluggable tiling-strategy framework: spatial planning split into three
// steps — strategy selection, tile-shape optimization, loop-nest schedule —
// behind a backend registry, so new planners drop in without touching
// solvers, PlanCache or rt::tune.
//
// Backends:
//   model      the paper's direct-mapped searches (Euc3D/GcdPad/Pad/Tile),
//              re-homed from the old monolithic plan_for_checked — which is
//              now a thin wrapper over this backend, so every existing call
//              site transparently goes through the framework.
//   lattice    associativity-lattice planner ("Model-Driven Automatic
//              Tiling with Cache Associativity Lattices"): picks the
//              min-cost tile whose worst-case per-set footprint fits the
//              cache's ways, so conflict misses vanish on set-associative
//              caches the direct-mapped model either over-restricts (tiny
//              DM-safe tiles) or under-protects (capacity-only tiles).
//   oblivious  cache-oblivious recursive bisection per PCOT: needs no cache
//              parameters at all, emits LoopSchedule::kRecursive with a
//              fixed overhead-amortizing base case — the clean degradation
//              path on hosts whose cache geometry cannot be probed.
//
// Every backend's plan executes bit-identically to the serial untiled nest:
// backends only reorder independent (i, j) iterations.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rt/core/plan.hpp"
#include "rt/core/stencil_spec.hpp"
#include "rt/guard/status.hpp"

namespace rt::core {

/// Cache geometry a backend plans against.  The model backend reads only
/// cs_elems (its searches assume direct-mapped); the lattice backend uses
/// all of it; the oblivious backend ignores it entirely (that is the
/// point).  `probed = false` marks guessed parameters — an unprobed host —
/// which the `auto` selection policy routes to the oblivious backend.
struct CacheGeom {
  long cs_elems = 2048;  ///< capacity in doubles (16KB L1 default)
  long line_elems = 4;   ///< line size in doubles (32B lines default)
  long assoc = 1;        ///< ways: 1 = direct-mapped, 0 = fully associative
  bool probed = true;    ///< false: parameters are fallback guesses

  friend bool operator==(const CacheGeom&, const CacheGeom&) = default;
};

/// One planning request: everything the three steps may consult.
struct PlanRequest {
  Transform transform = Transform::kOrig;
  CacheGeom geom{};
  long di = 0;
  long dj = 0;
  long n3 = 0;  ///< third array extent for the overflow gate (0 = unknown)
  StencilSpec spec{};
};

/// A planning strategy.  plan() is the template-method driver: it runs
/// select_strategy -> optimize_shape -> schedule, resets the plan to the
/// untiled unpadded fallback on any failure (exactly what the old
/// plan_for_checked returned), and applies the shared overflow gate on the
/// planned allocation size.  Backends implement the three steps only.
class TilingBackend {
 public:
  virtual ~TilingBackend() = default;

  virtual Backend id() const = 0;
  std::string_view name() const { return backend_name(id()); }

  /// Step 1 — strategy selection: can this backend answer @p req, and is
  /// the request itself well-formed?  Non-kOk rejects the whole request
  /// with the typed reason (the fallback plan is still returned).
  virtual rt::guard::Status select_strategy(const PlanRequest& req,
                                            std::string* detail) const = 0;

  /// Step 2 — tile-shape optimization: fill @p plan's tiled/tile/dip/djp.
  /// @p plan arrives as the untiled unpadded fallback; on a non-kOk return
  /// the driver restores that fallback (kFellBackUntiled keeps running).
  virtual rt::guard::Status optimize_shape(const PlanRequest& req,
                                           TilingPlan* plan,
                                           std::string* detail) const = 0;

  /// Step 3 — loop-nest schedule for the optimized shape.
  virtual LoopSchedule schedule(const PlanRequest& req,
                                const TilingPlan& plan) const = 0;

  /// The driver (non-virtual): three steps + fallback + overflow gate.
  PlanReport plan(const PlanRequest& req) const;
};

/// Process-wide backend registry.  instance() pre-registers the three
/// built-in backends; register_backend replaces any existing entry with the
/// same id, so tests can substitute instrumented backends.
class BackendRegistry {
 public:
  /// Registered backend for @p id (never nullptr for built-in ids on the
  /// shared instance; nullptr if a custom registry lacks the id).
  const TilingBackend* find(Backend id) const;
  /// Lookup by stable token ("model", "lattice", "oblivious").
  const TilingBackend* find(std::string_view name) const;
  /// Ids in registration order.
  std::vector<Backend> ids() const;

  void register_backend(std::unique_ptr<TilingBackend> b);

  /// Shared registry with the built-ins pre-registered.
  static BackendRegistry& instance();

 private:
  std::vector<std::unique_ptr<TilingBackend>> backends_;
};

/// Convenience: plan @p transform on DI x DJ x n3 arrays through the
/// registered backend @p id against geometry @p geom.  The backbone of
/// plan_for_checked (model backend, direct-mapped geometry) and of the
/// backend-aware bench/solver paths.
PlanReport plan_with_backend(Backend id, Transform transform,
                             const CacheGeom& geom, long di, long dj,
                             const StencilSpec& spec, long n3 = 0);

/// Selection policy for `--backend=auto`: probed geometry -> lattice
/// (measurement-grade parameters exist), unprobed -> oblivious (no
/// parameters needed, degrades cleanly, never untiled).
Backend auto_backend(const CacheGeom& geom);

/// Worst-case number of lines of a (ati x atj x atd)-element array tile
/// that map to the fullest cache set, maximized over all line phases the
/// tile can start at.  dip/djp are the allocated leading dimensions (set
/// geometry of row starts).  The lattice backend accepts a tile iff this
/// is <= the cache's ways — exposed so tests can pin the prediction
/// against rt::cachesim's arbitrary-associativity mode.
long lattice_worst_occupancy(const CacheGeom& geom, long dip, long djp,
                             long ati, long atj, int atd);

}  // namespace rt::core
