#pragma once
// The paper's tile cost function (Section 2.3):
//
//   Cost(TI, TJ) = (TI + m)(TJ + n) / (TI * TJ)
//
// i.e. distinct elements fetched per TIxTJx(N-2) block, normalised by the
// invariant N^3/L factor.  Lower is better; square-ish tiles win.  Tiles
// with a non-positive dimension (from trimming a degenerate array tile)
// cost infinity, which is how Euc3D discards them (Fig. 9).

#include <limits>

#include "rt/core/stencil_spec.hpp"

namespace rt::core {

/// Iteration-tile size in the two tiled dimensions (elements).
struct IterTile {
  long ti = 0;  ///< extent in I (fastest, contiguous dimension)
  long tj = 0;  ///< extent in J
  friend constexpr bool operator==(const IterTile&, const IterTile&) = default;
};

inline double cost(long ti, long tj, const StencilSpec& spec) {
  if (ti <= 0 || tj <= 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(ti + spec.trim_i) *
         static_cast<double>(tj + spec.trim_j) /
         (static_cast<double>(ti) * static_cast<double>(tj));
}

inline double cost(const IterTile& t, const StencilSpec& spec) {
  return cost(t.ti, t.tj, spec);
}

}  // namespace rt::core
