#pragma once
// Host cache-topology probe (Linux sysfs), hoisted out of the benches so
// every consumer sees the same answer: rt::bench::outer_cache_elems() sizes
// the temporal plane window from it, and rt::tune keys its persistent plan
// store on the fingerprint — a tuned tile shape is only valid on the cache
// hierarchy it was measured on ("Model-Driven Automatic Tiling with Cache
// Associativity Lattices" shows the model's ranking inverts across hosts).
//
// The probe enumerates /sys/devices/system/cpu/cpu0/cache/index*/ and
// parses level / type / size / ways_of_associativity / coherency_line_size /
// shared_cpu_map.  It never throws and never fails the caller: on hosts
// without the sysfs tree (containers, non-Linux) it returns an explicit
// unprobed topology whose accessors fall back to conservative defaults,
// and whose fingerprint is the distinguished "unknown" token (a store
// written on such a host only matches other unknown-topology hosts).

#include <string>
#include <vector>

namespace rt::core {

/// One cache level as sysfs describes it (cpu0's view).
struct CacheLevelInfo {
  int level = 0;         ///< 1, 2, 3, ... (sysfs "level")
  char type = 'U';       ///< 'D' data, 'I' instruction, 'U' unified
  long size_bytes = 0;   ///< capacity ("size", K/M suffixes expanded)
  long line_bytes = 0;   ///< "coherency_line_size" (0 = not exposed)
  long ways = 0;         ///< "ways_of_associativity" (0 = not exposed)
  std::string shared_cpus;  ///< raw "shared_cpu_map" mask (may be empty)
};

struct CacheTopology {
  /// All parseable levels in index order (instruction caches included —
  /// consumers filter; the fingerprint and outer_data_bytes skip them).
  std::vector<CacheLevelInfo> levels;
  /// True when the sysfs tree existed and at least one level parsed.
  bool probed = false;

  /// Capacity of the outermost (largest) data or unified cache — the level
  /// a temporal plane window must stay resident in.  Falls back to 32MB
  /// when unprobed.
  long outer_data_bytes() const;
  /// Same, in doubles (the planners' element unit).
  long outer_data_elems() const { return outer_data_bytes() / 8; }
  /// Line size of the innermost data/unified level (64 when unknown).
  long line_bytes() const;

  /// Stable host fingerprint over the data/unified levels, e.g.
  ///   "L1D:32768/8w/64B+L2U:1048576/16w/64B+L3U:33554432/16w/64B"
  /// ("?w" / "?B" for fields sysfs does not expose).  The distinguished
  /// token "unknown" when unprobed — rt::tune treats a store whose
  /// fingerprint differs from the host's as stale, never as wrong data.
  std::string fingerprint() const;
};

/// Probe a sysfs cache directory (index0/, index1/, ... under @p root).
/// @p root defaults to cpu0's real tree; tests point it at a fake tree.
CacheTopology probe_cache_topology(
    const std::string& root = "/sys/devices/system/cpu/cpu0/cache");

/// Process-wide cached probe of the real sysfs tree (the answer cannot
/// change mid-run; first call pays the file reads).
const CacheTopology& host_cache_topology();

}  // namespace rt::core
