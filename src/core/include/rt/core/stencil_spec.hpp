#pragma once
// Per-stencil parameters the tiling algorithms need (paper Sections 2.2-2.3):
//  * trim_i/trim_j — how much the iteration tile must shrink relative to the
//    array tile in each tiled dimension ("m" and "n" in the cost function);
//    for a +/-1 stencil both are 2.
//  * atd — minimum Array Tile Depth: how many adjacent planes must be
//    conflict-free in cache (3 for Jacobi/RESID, 4 for fused red-black SOR).
//  * halo — stencil radius: boundary layers kept fixed per side, and the
//    plane dependency distance the temporal planner skews by (1 for every
//    +/-1 stencil in this repo).

#include <string_view>

namespace rt::core {

struct StencilSpec {
  std::string_view name = "stencil";
  long trim_i = 2;  ///< "m": array-tile I extent minus iteration-tile extent
  long trim_j = 2;  ///< "n": same for J
  int atd = 3;      ///< minimum array tile depth (planes held in cache)
  long halo = 1;    ///< stencil radius (boundary layers per side)

  static constexpr StencilSpec jacobi3d() { return {"jacobi3d", 2, 2, 3, 1}; }
  static constexpr StencilSpec redblack3d() {
    return {"redblack3d", 2, 2, 4, 1};
  }
  static constexpr StencilSpec resid27() { return {"resid27", 2, 2, 3, 1}; }
};

}  // namespace rt::core
