#pragma once
// Brute-force self-interference check used to validate the tile selection
// algorithms: an array tile is conflict-free iff all of its element offsets
// are distinct modulo the cache size (direct-mapped, element granularity,
// exactly the model of Sections 2-3).

namespace rt::core {

/// @param cs  cache size in elements (direct-mapped)
/// @param di,dj  (padded) lower array dimensions
/// @param ti,tj,tk  array tile extents
/// @return true iff no two elements of the tile map to the same cache slot
bool is_conflict_free(long cs, long di, long dj, long ti, long tj, int tk);

}  // namespace rt::core
