#pragma once
// Euc3D (paper Fig. 9): non-conflicting array-tile enumeration and
// cost-based tile selection for 3D arrays on direct-mapped caches.
//
// An array tile of depth TK for a DI x DJ x M array occupies, for each of
// TK adjacent planes and TJ adjacent columns, TI contiguous elements.  Its
// element offsets in a cache of Cs elements are
//     { k*(DI*DJ) + j*DI + i  mod Cs :  k < TK, j < TJ, i < TI }.
// The tile is self-conflict-free iff all offsets are distinct, which holds
// iff TI does not exceed the smallest circular gap between the TK*TJ
// column-start offsets.  Enumeration tracks that minimal gap incrementally
// via pairwise offset differences, O(TK) work per TJ increment.

#include <vector>

#include "rt/core/cost.hpp"
#include "rt/core/stencil_spec.hpp"
#include "rt/guard/status.hpp"

namespace rt::core {

/// A non-conflicting array tile (paper Table 1 rows).
struct ArrayTile {
  long ti = 0;  ///< contiguous elements per column
  long tj = 0;  ///< columns per plane
  int tk = 0;   ///< planes
  friend constexpr bool operator==(const ArrayTile&,
                                   const ArrayTile&) = default;
};

/// Pareto frontier of non-conflicting array tiles of depth @p tk for a
/// di x dj x M array in a direct-mapped cache of @p cs elements, ordered by
/// increasing tj.  Empty if even a single column conflicts (e.g. two of the
/// tk plane offsets coincide).
std::vector<ArrayTile> euc3d_enumerate(long cs, long di, long dj, int tk);

/// Result of Euc3D selection.
struct Euc3dResult {
  IterTile tile{};        ///< trimmed iteration tile (TImc, TJmc); Fig. 9
  ArrayTile array_tile{}; ///< the untrimmed array tile it came from
  double tile_cost = 0;   ///< cost() of `tile`; +inf if nothing feasible
};

/// Euc3D (Fig. 9): enumerate array tiles with depth spec.atd (deeper tiles
/// are dominated: any conflict-free depth-d tile is conflict-free at depth
/// atd <= d with equal-or-larger TI/TJ Pareto frontier) and return the
/// trimmed iteration tile minimising the cost function.
Euc3dResult euc3d(long cs, long di, long dj, const StencilSpec& spec);

/// Validated euc3d(): never throws.  kInvalidArgument for non-positive
/// inputs or dimensions at/below the stencil halo, kInfeasible when the
/// cache cannot hold the stencil's ATD planes of even a single element or
/// when every enumerated tile trims away (the unchecked euc3d() would
/// return an infinite-cost empty tile the caller must remember to test).
rt::guard::Expected<Euc3dResult> euc3d_checked(long cs, long di, long dj,
                                               const StencilSpec& spec);

}  // namespace rt::core
