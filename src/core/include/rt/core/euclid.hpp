#pragma once
// Non-conflicting tile enumeration for a single stride (the 2D "Euc"
// algorithm of Rivera & Tseng, CC'99, which Euc3D extends).
//
// Setting: columns of an array with leading dimension `stride` start at
// byte-free element offsets {j*stride mod Cs} in a direct-mapped cache of
// Cs elements.  A tile of `width` columns, each `height` contiguous
// elements, is self-conflict-free iff the circular gaps between the width
// column-start offsets are all >= height.  As width grows the minimal gap
// decreases at continued-fraction convergent widths; enumerate the Pareto
// frontier of (width, max height) records in O(log Cs).

#include <cstdint>
#include <vector>

namespace rt::core {

/// A Pareto record: `width` columns of `height` elements is the widest
/// conflict-free tile with that height.
struct WidthHeight {
  long width = 0;
  long height = 0;
  friend constexpr bool operator==(const WidthHeight&,
                                   const WidthHeight&) = default;
};

/// Pareto frontier of non-conflicting (width, height) tiles for columns of
/// stride @p stride in a direct-mapped cache of @p cs elements, via the
/// Euclidean/continued-fraction recurrence.  Records are ordered by
/// increasing width (decreasing height); the final record has
/// height = gcd(cs, stride mod cs) (or the full cache if stride divides).
std::vector<WidthHeight> euc_pareto(long cs, long stride);

/// Reference implementation: smallest circular gap among the offsets
/// {j*stride mod cs : j < width} — i.e. the tallest conflict-free tile of
/// @p width columns.  O(width log width); used to validate euc_pareto.
long max_height_bruteforce(long cs, long stride, long width);

}  // namespace rt::core
