#pragma once
// Memoized plan_for_checked: the Euc3D/Pad/GcdPad searches are pure
// functions of (transform, cache geometry, array dims, stencil), yet the
// applications re-run them per V-cycle level, per solver instance and per
// benchmark repetition.  PlanCache keys the full input tuple and returns
// the cached PlanReport on a repeat query — hit/miss counters are kept so
// benches can surface the redundancy they eliminated (rt::obs JSON
// records carry them as plan_cache.{hits,misses}).
//
// Thread-safe: lookups take a mutex (the planner itself is far more
// expensive than the critical section), so solver instances running on
// different threads can share the process-wide instance().

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "rt/core/plan.hpp"
#include "rt/core/stencil_spec.hpp"
#include "rt/core/temporal.hpp"

namespace rt::core {

/// Full input tuple of plan_for_checked.  The StencilSpec contributes its
/// numeric fields only (trim_i/trim_j/atd/halo): specs with equal
/// parameters produce equal plans whatever their display name.  Threads
/// and SIMD level are correctly absent — the spatial search does not take
/// them, so keying on them would only duplicate entries.
struct PlanKey {
  Transform transform = Transform::kOrig;
  long cs = 0;
  long di = 0;
  long dj = 0;
  long trim_i = 0;
  long trim_j = 0;
  int atd = 0;
  long halo = 0;
  long n3 = 0;
  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const;
};

/// Full input tuple of temporal_plan_checked.  Unlike the spatial search,
/// the temporal planner DOES take tsteps/bk/threads — every one of them
/// changes the plan, so every one is in the key.
struct TemporalKey {
  TemporalMode mode = TemporalMode::kOff;
  long cs = 0;
  long n1 = 0;
  long n2 = 0;
  long n3 = 0;
  int tsteps = 0;
  long bk = 0;
  int threads = 0;
  long halo = 0;
  friend bool operator==(const TemporalKey&, const TemporalKey&) = default;
};

struct TemporalKeyHash {
  std::size_t operator()(const TemporalKey& k) const;
};

/// Monotonic hit/miss counts since construction (or the last clear()).
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

class PlanCache {
 public:
  /// Cached plan_for_checked: first call per key runs the search, repeats
  /// return the memoized PlanReport (including its status/detail).
  PlanReport plan(Transform transform, long cs, long di, long dj,
                  const StencilSpec& spec, long n3 = 0);

  /// Cached temporal_plan_checked, same contract: degraded reports are
  /// memoized with their status/detail.  Shares the hit/miss counters
  /// with the spatial map (one redundancy figure per cache).
  TemporalReport temporal(TemporalMode mode, long cs, long n1, long n2,
                          long n3, int tsteps, long bk, int threads,
                          long halo = 1);

  PlanCacheStats stats() const;
  /// Entries across both the spatial and temporal maps.
  std::size_t size() const;
  /// Drop all entries and reset the counters.
  void clear();

  /// Process-wide shared cache (solvers and benches default to this).
  static PlanCache& instance();

 private:
  mutable std::mutex m_;
  std::unordered_map<PlanKey, PlanReport, PlanKeyHash> map_;
  std::unordered_map<TemporalKey, TemporalReport, TemporalKeyHash> tmap_;
  PlanCacheStats stats_;
};

}  // namespace rt::core
