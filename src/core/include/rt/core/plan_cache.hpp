#pragma once
// Memoized plan_for_checked: the Euc3D/Pad/GcdPad searches are pure
// functions of (transform, cache geometry, array dims, stencil), yet the
// applications re-run them per V-cycle level, per solver instance and per
// benchmark repetition.  PlanCache keys the full input tuple and returns
// the cached PlanReport on a repeat query — hit/miss counters are kept so
// benches can surface the redundancy they eliminated (rt::obs JSON
// records carry them as plan_cache.{hits,misses}).
//
// Thread-safe: lookups take a mutex (the planner itself is far more
// expensive than the critical section), so solver instances running on
// different threads can share the process-wide instance().

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "rt/core/backend.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/stencil_spec.hpp"
#include "rt/core/temporal.hpp"

namespace rt::core {

/// Full input tuple of the spatial planners.  The StencilSpec contributes
/// its numeric fields only (trim_i/trim_j/atd/halo): specs with equal
/// parameters produce equal plans whatever their display name.  Threads
/// and SIMD level are correctly absent — the spatial search does not take
/// them, so keying on them would only duplicate entries.
///
/// The backend id and the geometry fields it actually reads are part of
/// the key, so plans from different backends never collide: the model
/// backend reads only `cs` (its canonical keys zero line_elems and pin
/// assoc = 1 — the historical key shape, so pre-backend pins still hit),
/// the oblivious backend reads no geometry at all (same canonical shape),
/// and the lattice backend keys its full (line_elems, assoc) geometry.
/// make_backend_key() applies this canonicalization.
struct PlanKey {
  Transform transform = Transform::kOrig;
  long cs = 0;
  long di = 0;
  long dj = 0;
  long trim_i = 0;
  long trim_j = 0;
  int atd = 0;
  long halo = 0;
  long n3 = 0;
  Backend backend = Backend::kModel;
  long line_elems = 0;  ///< 0 unless the backend reads the line size
  long assoc = 1;       ///< 1 unless the backend reads the associativity
  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const;
};

/// Full input tuple of temporal_plan_checked.  Unlike the spatial search,
/// the temporal planner DOES take tsteps/bk/threads — every one of them
/// changes the plan, so every one is in the key.
struct TemporalKey {
  TemporalMode mode = TemporalMode::kOff;
  long cs = 0;
  long n1 = 0;
  long n2 = 0;
  long n3 = 0;
  int tsteps = 0;
  long bk = 0;
  int threads = 0;
  long halo = 0;
  friend bool operator==(const TemporalKey&, const TemporalKey&) = default;
};

struct TemporalKeyHash {
  std::size_t operator()(const TemporalKey& k) const;
};

/// Monotonic hit/miss counts since construction (or the last clear()).
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Subset of `hits` served from pinned (autotuned) entries — the
  /// measurement-driven plans rt::tune installs ahead of the model search.
  std::uint64_t pinned_hits = 0;
  /// Memoized entries dropped by the capacity cap since construction (or
  /// the last clear()); pinned entries are never evicted.
  std::uint64_t evictions = 0;
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

class PlanCache {
 public:
  /// Cached plan_for_checked: first call per key runs the search, repeats
  /// return the memoized PlanReport (including its status/detail).
  PlanReport plan(Transform transform, long cs, long di, long dj,
                  const StencilSpec& spec, long n3 = 0);

  /// Cached plan_with_backend: same memoization contract as plan(), keyed
  /// by make_backend_key so different backends (and different geometries,
  /// where the backend reads them) never share an entry.  plan() is
  /// exactly plan_backend(Backend::kModel, ...) with direct-mapped
  /// geometry.
  PlanReport plan_backend(Backend backend, Transform transform,
                          const CacheGeom& geom, long di, long dj,
                          const StencilSpec& spec, long n3 = 0);

  /// Cached temporal_plan_checked, same contract: degraded reports are
  /// memoized with their status/detail.  Shares the hit/miss counters
  /// with the spatial map (one redundancy figure per cache).
  TemporalReport temporal(TemporalMode mode, long cs, long n1, long n2,
                          long n3, int tsteps, long bk, int threads,
                          long halo = 1);

  /// Key builders, so callers that pin externally computed (autotuned)
  /// reports key them exactly the way plan()/temporal() will look them up.
  static PlanKey make_key(Transform transform, long cs, long di, long dj,
                          const StencilSpec& spec, long n3 = 0);
  /// PlanKey for a backend-routed lookup, with the geometry fields the
  /// backend does not read canonicalized away (see PlanKey).
  static PlanKey make_backend_key(Backend backend, Transform transform,
                                  const CacheGeom& geom, long di, long dj,
                                  const StencilSpec& spec, long n3 = 0);
  static TemporalKey make_temporal_key(TemporalMode mode, long cs, long n1,
                                       long n2, long n3, int tsteps, long bk,
                                       int threads, long halo = 1);

  /// Pin a report for @p key: served ahead of the model plan on every
  /// subsequent plan()/temporal() lookup (counted in stats().pinned_hits),
  /// never evicted by the capacity cap, replaced by a repeat pin.  This is
  /// how rt::tune installs measured winners over the analytic search.
  void pin(const PlanKey& key, const PlanReport& rep);
  void pin_temporal(const TemporalKey& key, const TemporalReport& rep);
  /// Pinned entries across both maps.
  std::size_t pinned_size() const;

  /// Cap on *memoized* entries across the spatial and temporal maps
  /// (pinned entries don't count).  Exceeding inserts evict the oldest
  /// memoized entry (FIFO) and bump stats().evictions.  0 = unlimited
  /// (the default).  Shrinking below the current size evicts immediately.
  void set_capacity(std::size_t cap);
  std::size_t capacity() const;

  PlanCacheStats stats() const;
  /// Memoized entries across both the spatial and temporal maps (pinned
  /// entries are counted separately: pinned_size()).
  std::size_t size() const;
  /// Drop all entries — memoized and pinned — and reset the counters.
  /// Safe to call concurrently with lookups: racing queries simply re-run
  /// the (pure) search and repopulate.
  void clear();

  /// Process-wide shared cache (solvers and benches default to this).
  static PlanCache& instance();

 private:
  /// FIFO insertion record for capacity eviction.
  struct Order {
    bool temporal = false;
    PlanKey key{};
    TemporalKey tkey{};
  };
  void evict_locked();

  mutable std::mutex m_;
  std::unordered_map<PlanKey, PlanReport, PlanKeyHash> map_;
  std::unordered_map<TemporalKey, TemporalReport, TemporalKeyHash> tmap_;
  std::unordered_map<PlanKey, PlanReport, PlanKeyHash> pinned_;
  std::unordered_map<TemporalKey, TemporalReport, TemporalKeyHash> tpinned_;
  std::deque<Order> order_;  ///< memoized insertions, oldest first
  std::size_t capacity_ = 0;
  PlanCacheStats stats_;
};

}  // namespace rt::core
