#pragma once
// Transformation dispatcher: maps the paper's Table 2 rows onto concrete
// (tile, padding) decisions for a kernel + problem size.

#include <string>
#include <string_view>
#include <vector>

#include "rt/core/cost.hpp"
#include "rt/core/stencil_spec.hpp"
#include "rt/guard/status.hpp"

namespace rt::core {

/// The transformations evaluated in the paper (Table 2).
enum class Transform {
  kOrig,      ///< no tiling, no padding
  kTile,      ///< square capacity-only tile, no padding
  kEuc3d,     ///< non-conflicting tile (Euc3D), no padding
  kGcdPad,    ///< fixed non-conflicting tile + GCD padding
  kPad,       ///< variable non-conflicting tile + (<= GCD) padding
  kGcdPadNT,  ///< GCD padding only, no tiling
};

std::string_view transform_name(Transform t);

/// All transforms in the paper's presentation order.
const std::vector<Transform>& all_transforms();

/// Which planner backend produced a plan (rt/core/backend.hpp).  The paper's
/// direct-mapped searches are the `model` backend; `lattice` plans
/// conflict-aware tiles for set-associative caches; `oblivious` emits a
/// recursive decomposition that needs no cache parameters at all.
enum class Backend {
  kModel,      ///< Euc3D/GcdPad/Pad/Tile direct-mapped searches (the paper)
  kLattice,    ///< associativity-lattice conflict-aware tile search
  kOblivious,  ///< cache-oblivious recursive bisection (no cache params)
};

/// Stable token ("model", "lattice", "oblivious").
std::string_view backend_name(Backend b);
bool parse_backend(const std::string& s, Backend* out);
/// All backends in registry order.
const std::vector<Backend>& all_backends();

/// How the loop nest executes the plan (the third step of the pluggable
/// tiling interface: strategy -> shape -> schedule).
enum class LoopSchedule {
  kFlat,       ///< untiled K/J/I nest
  kTiled,      ///< JI strip-mined, tile loops outermost (paper Fig. 6)
  kRecursive,  ///< cache-oblivious bisection down to the plan's base tile
};

/// Stable token ("flat", "tiled", "recursive").
std::string_view schedule_name(LoopSchedule s);
bool parse_schedule(const std::string& s, LoopSchedule* out);

/// Concrete tiling/padding decision for one (transform, kernel, size).
struct TilingPlan {
  Transform transform = Transform::kOrig;
  bool tiled = false;
  IterTile tile{};  ///< valid when tiled (the recursive schedule's base case)
  long dip = 0;     ///< leading dimension to allocate (>= DI)
  long djp = 0;     ///< second dimension to allocate (>= DJ)
  Backend backend = Backend::kModel;  ///< which planner produced this plan
  LoopSchedule schedule = LoopSchedule::kFlat;  ///< loop-nest execution form
};

/// Compute the plan for @p transform on a DI x DJ x M array of a kernel
/// described by @p spec, targeting a direct-mapped cache of @p cs elements.
/// Degenerate tiles (e.g. Euc3D finding nothing feasible) fall back to
/// untiled execution.
TilingPlan plan_for(Transform transform, long cs, long di, long dj,
                    const StencilSpec& spec);

/// plan_for() plus the typed reason for any degradation.  `plan` is always
/// usable (on failure it is the untiled, unpadded fallback plan_for would
/// have silently produced), and `status` says what actually happened:
///   kOk               the transform ran as requested
///   kInvalidArgument  cs <= 0, a dimension at/below the stencil halo, or a
///                     non-pow-2 cache for the GCD-based transforms
///   kInfeasible       valid inputs, but the cache cannot hold the
///                     stencil's ATD planes (no tile can exist)
///   kFellBackUntiled  the tiling search found nothing; running untiled
///   kOverflow         the padded allocation size dip*djp*n3 overflows long
struct PlanReport {
  TilingPlan plan;
  rt::guard::Status status = rt::guard::Status::kOk;
  std::string detail;  ///< human-readable reason when status != kOk
  bool ok() const { return status == rt::guard::Status::kOk; }
};

/// Validated planner entry point: never throws, never silently degrades.
/// @p n3 is the third (unpadded) array extent for the overflow check; pass
/// 0 when unknown (only the dip*djp plane stride is checked then).
PlanReport plan_for_checked(Transform transform, long cs, long di, long dj,
                            const StencilSpec& spec, long n3 = 0);

}  // namespace rt::core
