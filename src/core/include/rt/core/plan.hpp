#pragma once
// Transformation dispatcher: maps the paper's Table 2 rows onto concrete
// (tile, padding) decisions for a kernel + problem size.

#include <string_view>
#include <vector>

#include "rt/core/cost.hpp"
#include "rt/core/stencil_spec.hpp"

namespace rt::core {

/// The transformations evaluated in the paper (Table 2).
enum class Transform {
  kOrig,      ///< no tiling, no padding
  kTile,      ///< square capacity-only tile, no padding
  kEuc3d,     ///< non-conflicting tile (Euc3D), no padding
  kGcdPad,    ///< fixed non-conflicting tile + GCD padding
  kPad,       ///< variable non-conflicting tile + (<= GCD) padding
  kGcdPadNT,  ///< GCD padding only, no tiling
};

std::string_view transform_name(Transform t);

/// All transforms in the paper's presentation order.
const std::vector<Transform>& all_transforms();

/// Concrete tiling/padding decision for one (transform, kernel, size).
struct TilingPlan {
  Transform transform = Transform::kOrig;
  bool tiled = false;
  IterTile tile{};  ///< valid when tiled
  long dip = 0;     ///< leading dimension to allocate (>= DI)
  long djp = 0;     ///< second dimension to allocate (>= DJ)
};

/// Compute the plan for @p transform on a DI x DJ x M array of a kernel
/// described by @p spec, targeting a direct-mapped cache of @p cs elements.
/// Degenerate tiles (e.g. Euc3D finding nothing feasible) fall back to
/// untiled execution.
TilingPlan plan_for(Transform transform, long cs, long di, long dj,
                    const StencilSpec& spec);

}  // namespace rt::core
