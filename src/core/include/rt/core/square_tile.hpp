#pragma once
// The "Tile" baseline transformation (paper Table 2 / Section 4.2): a fixed
// square array tile whose volume equals the cache size — optimal under the
// cost model *assuming a fully associative cache*.  Comparing against it
// isolates the damage done by conflict misses.

#include "rt/core/cost.hpp"
#include "rt/core/euc3d.hpp"
#include "rt/core/stencil_spec.hpp"

namespace rt::core {

/// Square array tile with TI = TJ = floor(sqrt(Cs / ATD)), trimmed to the
/// iteration tile.
struct SquareTileResult {
  IterTile tile{};
  ArrayTile array_tile{};
};

SquareTileResult square_tile(long cs, const StencilSpec& spec);

}  // namespace rt::core
