#pragma once
// The 2D tile-size-selection algorithm family the paper builds on and
// compares against (Section 3.3 and Related Work):
//
//  * lrw_tile      — Lam/Rothberg/Wolf (ASPLOS'91): largest non-conflicting
//                    *square* tile, found by scanning side lengths
//                    (O(sqrt(Cs)); the paper contrasts Euc3D's O(log Cs)
//                    against it and notes it "does not handle 3D arrays").
//  * esseghir_tile — Esseghir (MS thesis '93): "tall" tiles of whole
//                    columns — as many full columns as fit in cache.
//  * euc2d        — Coleman/McKinley-style non-conflicting rectangles from
//                    the Euclidean recurrence + cost selection (the "Euc"
//                    algorithm of Rivera & Tseng CC'99 that Euc3D extends).
//
// All sizes are in array elements; caches are direct-mapped.

#include "rt/core/cost.hpp"
#include "rt/core/euclid.hpp"
#include "rt/core/stencil_spec.hpp"

namespace rt::core {

/// Largest square tile (side, side) such that `side` rows of `side`
/// consecutive columns of an n-column array are conflict-free.
IterTile lrw_tile(long cs, long n);

/// Whole-column tile: n rows x floor(cs / n) columns (clipped to >= 1).
IterTile esseghir_tile(long cs, long n);

/// Linear-algebra 2D tile cost: a TIxTJ tile of a reuse-carrying loop nest
/// incurs ~TI + TJ boundary fetches per TI*TJ reused elements, so misses
/// per element ~ 1/TI + 1/TJ.  Lower is better; favours large square tiles.
inline double cost2d(const IterTile& t) {
  if (t.ti <= 0 || t.tj <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  return 1.0 / static_cast<double>(t.ti) + 1.0 / static_cast<double>(t.tj);
}

/// cost2d-minimising non-conflicting rectangle from the Euclidean records.
struct Euc2dResult {
  IterTile tile{};       ///< selected iteration tile (height, width)
  WidthHeight record{};  ///< the (width, height) record it came from
  double tile_cost = 0;  ///< cost2d of `tile`
};
Euc2dResult euc2d(long cs, long n);

/// "Effective cache size" method (paper Section 3.2): pretend the cache is
/// only `fraction` of its real capacity (~10% in the literature) and pick
/// the capacity-optimal square tile for that; conflicts are *probably*
/// avoided but the cache is mostly unused.
IterTile ecs_tile(long cs, double fraction, const StencilSpec& spec);

}  // namespace rt::core
