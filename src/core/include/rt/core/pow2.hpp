#pragma once
// Shared power-of-two helpers for the padding heuristics (GcdPad picks
// power-of-two tile extents; InterPad picks a power-of-two partition
// count).  Centralised here so every TU gets the same overflow behaviour.

#include <climits>
#include <stdexcept>

namespace rt::core {

constexpr bool is_pow2(long x) { return x > 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x <= 1 maps to 1).  The largest
/// representable power of two in a long is 2^(bits-2+1)/... i.e.
/// LONG_MAX/2 + 1; anything above it has no representable successor, so we
/// throw instead of shifting into overflow (which used to loop forever).
inline long next_pow2(long x) {
  if (x <= 1) return 1;
  if (x > LONG_MAX / 2 + 1) {
    throw std::overflow_error("next_pow2: no representable power of two >= x");
  }
  long p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace rt::core
