#pragma once
// GcdPad (paper Fig. 10): pick a fixed power-of-two array tile whose volume
// equals the cache size, then pad the array's lower dimensions so that
//   gcd(DIp, Cs) = TI  and  gcd(DJp, Cs) = TJ,
// which guarantees the tile is self-conflict-free (Section 3.4.1).

#include "rt/core/cost.hpp"
#include "rt/core/euc3d.hpp"
#include "rt/core/stencil_spec.hpp"
#include "rt/guard/status.hpp"

namespace rt::core {

/// Tile + padded-dimension plan returned by the padding heuristics.
struct PadPlan {
  IterTile tile{};         ///< trimmed iteration tile (TI', TJ')
  long dip = 0;            ///< padded leading dimension (>= DI)
  long djp = 0;            ///< padded second dimension (>= DJ)
  ArrayTile array_tile{};  ///< untrimmed array tile backing `tile`
};

/// GcdPad.  @p cs must be a power of two (it is a cache size in elements).
/// TK is 4 for stencils with ATD <= 4 ("TK is normally chosen as 4"),
/// otherwise the next power of two >= ATD.
PadPlan gcd_pad(long cs, long di, long dj, const StencilSpec& spec);

/// The array-tile depth GcdPad uses for @p spec (see above).
int gcd_pad_tk(const StencilSpec& spec);

/// Validated gcd_pad(): never throws.  kInvalidArgument when cs is not a
/// power of two (the GCD construction needs pow-2 strides to divide the
/// cache) or a dimension is non-positive / at or below the stencil halo;
/// kInfeasible when the cache is smaller than the required tile depth.
rt::guard::Expected<PadPlan> gcd_pad_checked(long cs, long di, long dj,
                                             const StencilSpec& spec);

}  // namespace rt::core
