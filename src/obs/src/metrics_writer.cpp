#include "rt/obs/metrics_writer.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace rt::obs {

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) {
      items_[i] = std::move(v);
      return *this;
    }
  }
  keys_.push_back(key);
  items_.push_back(std::move(v));
  return *this;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return &items_[i];
  }
  return nullptr;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  items_.push_back(std::move(v));
  return *this;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonValue::format_double(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no NaN/Inf
  // Shortest representation that round-trips: try increasing precision.
  char buf[32];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == d) break;
  }
  std::string s(buf);
  // Keep doubles visually distinct from integers (jq-compatible readers
  // don't care, humans diffing goldens do).
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

void JsonValue::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
             : "";
  const std::string pad_close =
      pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  const char* nl = pretty ? "\n" : "";
  const char* kv_sep = pretty ? ": " : ":";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: out += format_double(double_); break;
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].write(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += pad_close;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (items_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        out += '"';
        out += json_escape(keys_[i]);
        out += '"';
        out += kv_sep;
        items_[i].write(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += pad_close;
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

JsonValue& MetricsWriter::add_record() {
  records_.push_back(std::make_unique<JsonValue>(JsonValue::object()));
  return *records_.back();
}

std::string MetricsWriter::dump() const {
  JsonValue arr = JsonValue::array();
  for (const auto& r : records_) arr.push_back(*r);
  return arr.dump(2) + "\n";
}

bool MetricsWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << dump();
  return static_cast<bool>(f.flush());
}

}  // namespace rt::obs
