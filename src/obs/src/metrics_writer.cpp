#include "rt/obs/metrics_writer.hpp"

#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rt::obs {

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) {
      items_[i] = std::move(v);
      return *this;
    }
  }
  keys_.push_back(key);
  items_.push_back(std::move(v));
  return *this;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return &items_[i];
  }
  return nullptr;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  items_.push_back(std::move(v));
  return *this;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonValue::format_double(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no NaN/Inf
  // Shortest representation that round-trips: try increasing precision.
  char buf[32];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == d) break;
  }
  std::string s(buf);
  // Keep doubles visually distinct from integers (jq-compatible readers
  // don't care, humans diffing goldens do).
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

void JsonValue::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
             : "";
  const std::string pad_close =
      pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  const char* nl = pretty ? "\n" : "";
  const char* kv_sep = pretty ? ": " : ":";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: out += format_double(double_); break;
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].write(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += pad_close;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (items_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        out += '"';
        out += json_escape(keys_[i]);
        out += '"';
        out += kv_sep;
        items_[i].write(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += pad_close;
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

const std::string& JsonValue::key_at(std::size_t i) const {
  static const std::string empty;
  return i < keys_.size() ? keys_[i] : empty;
}

namespace {

/// Recursive-descent JSON parser over a string.  Strictness targets the
/// durable-state use case (rt::tune plan store): a truncated or appended
/// file must fail cleanly, never half-parse.
class Parser {
 public:
  Parser(const std::string& text, std::string* err)
      : s_(text), err_(err) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing garbage after document");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    if (err_ != nullptr) {
      *err_ = why + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word, JsonValue v, JsonValue* out) {
    const std::size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    *out = std::move(v);
    return true;
  }

  bool parse_string(std::string* out) {
    // pos_ is on the opening quote.
    ++pos_;
    std::string str;
    while (true) {
      if (pos_ >= s_.size()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        *out = std::move(str);
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        str += static_cast<char>(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= s_.size()) return fail("unterminated escape");
      const char e = s_[pos_ + 1];
      pos_ += 2;
      switch (e) {
        case '"': str += '"'; break;
        case '\\': str += '\\'; break;
        case '/': str += '/'; break;
        case 'b': str += '\b'; break;
        case 'f': str += '\f'; break;
        case 'n': str += '\n'; break;
        case 'r': str += '\r'; break;
        case 't': str += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_ + static_cast<std::size_t>(i)];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape digit");
          }
          pos_ += 4;
          // BMP code point to UTF-8 (surrogate pairs are rejected: the
          // writer never emits them and durable state should not either).
          if (cp >= 0xD800 && cp <= 0xDFFF) return fail("surrogate in \\u escape");
          if (cp < 0x80) {
            str += static_cast<char>(cp);
          } else if (cp < 0x800) {
            str += static_cast<char>(0xC0 | (cp >> 6));
            str += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            str += static_cast<char>(0xE0 | (cp >> 12));
            str += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            str += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return fail("bad escape character");
      }
    }
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string tok = s_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    if (!is_double) {
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (end == tok.c_str() || *end != '\0') {
        pos_ = start;
        return fail("bad number");
      }
      if (errno != ERANGE) {
        *out = JsonValue(v);
        return true;
      }
      // Integer overflow: fall through to the double representation.
    }
    errno = 0;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0' || errno == ERANGE) {
      pos_ = start;
      return fail("bad number");
    }
    *out = JsonValue(d);
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case 'n': return literal("null", JsonValue(), out);
      case 't': return literal("true", JsonValue(true), out);
      case 'f': return literal("false", JsonValue(false), out);
      case '"': {
        std::string str;
        if (!parse_string(&str)) return false;
        *out = JsonValue(std::move(str));
        return true;
      }
      case '[': {
        ++pos_;
        JsonValue arr = JsonValue::array();
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
          *out = std::move(arr);
          return true;
        }
        while (true) {
          JsonValue v;
          skip_ws();
          if (!parse_value(&v, depth + 1)) return false;
          arr.push_back(std::move(v));
          skip_ws();
          if (pos_ >= s_.size()) return fail("unterminated array");
          if (s_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (s_[pos_] == ']') {
            ++pos_;
            *out = std::move(arr);
            return true;
          }
          return fail("expected ',' or ']' in array");
        }
      }
      case '{': {
        ++pos_;
        JsonValue obj = JsonValue::object();
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
          *out = std::move(obj);
          return true;
        }
        while (true) {
          skip_ws();
          if (pos_ >= s_.size() || s_[pos_] != '"') {
            return fail("expected object key");
          }
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (pos_ >= s_.size() || s_[pos_] != ':') {
            return fail("expected ':' after object key");
          }
          ++pos_;
          skip_ws();
          JsonValue v;
          if (!parse_value(&v, depth + 1)) return false;
          obj.set(key, std::move(v));
          skip_ws();
          if (pos_ >= s_.size()) return fail("unterminated object");
          if (s_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (s_[pos_] == '}') {
            ++pos_;
            *out = std::move(obj);
            return true;
          }
          return fail("expected ',' or '}' in object");
        }
      }
      default:
        if (s_[pos_] == '-' || (s_[pos_] >= '0' && s_[pos_] <= '9')) {
          return parse_number(out);
        }
        return fail("unexpected character");
    }
  }

  const std::string& s_;
  std::string* err_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(const std::string& text, JsonValue* out, std::string* err) {
  JsonValue v;
  if (!Parser(text, err).parse(&v)) return false;
  *out = std::move(v);
  return true;
}

JsonValue& MetricsWriter::add_record() {
  records_.push_back(std::make_unique<JsonValue>(JsonValue::object()));
  return *records_.back();
}

std::string MetricsWriter::dump() const {
  JsonValue arr = JsonValue::array();
  for (const auto& r : records_) arr.push_back(*r);
  return arr.dump(2) + "\n";
}

bool MetricsWriter::write_file(const std::string& path) const {
  return write_file_checked(path) == rt::guard::Status::kOk;
}

rt::guard::Status MetricsWriter::write_file_checked(const std::string& path,
                                                    std::string* detail) const {
  // stdio instead of ofstream: the C streams report *which* call failed and
  // leave errno set, which is the whole point of the typed path.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (detail != nullptr) {
      *detail = "cannot open " + path + ": " + std::strerror(errno);
    }
    return rt::guard::Status::kInvalidArgument;
  }
  const std::string text = dump();
  rt::guard::Status st = rt::guard::Status::kOk;
  const std::size_t wrote = std::fwrite(text.data(), 1, text.size(), f);
  if (wrote != text.size()) {
    if (detail != nullptr) {
      *detail = "short write to " + path + " (" + std::to_string(wrote) +
                " of " + std::to_string(text.size()) + " bytes): " +
                std::strerror(errno);
    }
    st = rt::guard::Status::kIoError;
  }
  // fclose flushes; a flush failure (ENOSPC discovered late) must not be
  // swallowed — that is exactly the silent-truncation bug this fixes.
  if (std::fclose(f) != 0 && st == rt::guard::Status::kOk) {
    if (detail != nullptr) {
      *detail = "flush/close of " + path + " failed: " + std::strerror(errno);
    }
    st = rt::guard::Status::kIoError;
  }
  return st;
}

rt::guard::Status MetricsWriter::write_fd_checked(int fd,
                                                  std::string* detail) const {
  return write_all_fd(fd, dump(), detail);
}

rt::guard::Status write_all_fd(int fd, const std::string& text,
                               std::string* detail) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const bool timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
      if (detail != nullptr) {
        *detail = std::string(timed_out ? "write timed out" : "write failed") +
                  " after " + std::to_string(off) + " of " +
                  std::to_string(text.size()) + " bytes: " +
                  std::strerror(errno);
      }
      return timed_out ? rt::guard::Status::kTimeout
                       : rt::guard::Status::kIoError;
    }
    off += static_cast<std::size_t>(n);
  }
  return rt::guard::Status::kOk;
}

}  // namespace rt::obs
