#include "rt/obs/perf_counters.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "rt/guard/fault_injector.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define RT_OBS_HAVE_PERF 1
#else
#define RT_OBS_HAVE_PERF 0
#endif

namespace rt::obs {

namespace {

std::atomic<bool> g_force_unavailable{false};

bool env_disabled() {
  const char* v = std::getenv("RT_OBS_DISABLE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

bool disabled() { return g_force_unavailable.load() || env_disabled(); }

/// Fault-injection hook (rt::guard kCounterOpen): behaves exactly like a
/// denied perf_event_open, so the graceful-degradation path tests exercise
/// is the one real hosts without PMU access take.
bool injected_open_failure() {
  return rt::guard::FaultInjector::armed(rt::guard::FaultKind::kCounterOpen) &&
         rt::guard::FaultInjector::instance().should_fail(
             rt::guard::FaultKind::kCounterOpen);
}

// Remembers the errno of the first failed open so describe_counter_support
// can explain *why* the host degraded.
std::atomic<int> g_first_open_errno{0};

}  // namespace

const char* counter_name(CounterKind k) {
  switch (k) {
    case CounterKind::kCycles: return "cycles";
    case CounterKind::kInstructions: return "instructions";
    case CounterKind::kL1dLoads: return "l1d_loads";
    case CounterKind::kL1dLoadMisses: return "l1d_load_misses";
    case CounterKind::kLlcLoadMisses: return "llc_load_misses";
    case CounterKind::kDtlbLoadMisses: return "dtlb_load_misses";
  }
  return "?";
}

bool CounterReadings::any_valid() const {
  for (const CounterValue& c : counts) {
    if (c.valid) return true;
  }
  return false;
}

#if RT_OBS_HAVE_PERF

namespace {

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

EventSpec event_spec(CounterKind k) {
  const auto cache = [](std::uint64_t id, std::uint64_t op, std::uint64_t res) {
    return id | (op << 8) | (res << 16);
  };
  switch (k) {
    case CounterKind::kCycles:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
    case CounterKind::kInstructions:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS};
    case CounterKind::kL1dLoads:
      return {PERF_TYPE_HW_CACHE,
              cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                    PERF_COUNT_HW_CACHE_RESULT_ACCESS)};
    case CounterKind::kL1dLoadMisses:
      return {PERF_TYPE_HW_CACHE,
              cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                    PERF_COUNT_HW_CACHE_RESULT_MISS)};
    case CounterKind::kLlcLoadMisses:
      return {PERF_TYPE_HW_CACHE,
              cache(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                    PERF_COUNT_HW_CACHE_RESULT_MISS)};
    case CounterKind::kDtlbLoadMisses:
      return {PERF_TYPE_HW_CACHE,
              cache(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                    PERF_COUNT_HW_CACHE_RESULT_MISS)};
  }
  return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
}

int perf_open(const EventSpec& ev, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = ev.type;
  attr.config = ev.config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // group enabled via the leader
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // Count child threads too: rt::par workers are spawned after the pool is
  // constructed, which may be before or after the counters open, so inherit
  // alone is not enough — but the pool's workers belong to this process, and
  // per-process (pid=0, cpu=-1) counting covers threads that already exist.
  // inherit covers any spawned later.  inherit requires no PERF_FORMAT_GROUP
  // reads on some kernels, so each event is read via its own fd instead.
  attr.inherit = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          group_fd, /*flags=*/0UL);
  if (fd < 0) {
    int expected = 0;
    g_first_open_errno.compare_exchange_strong(expected, errno);
  }
  return static_cast<int>(fd);
}

}  // namespace

struct PerfCounters::Impl {
  std::array<int, kNumCounters> fds;
  Impl() { fds.fill(-1); }
  ~Impl() {
    for (int fd : fds) {
      if (fd >= 0) close(fd);
    }
  }
  int leader() const {
    for (int fd : fds) {
      if (fd >= 0) return fd;
    }
    return -1;
  }
};

PerfCounters::PerfCounters() {
  if (disabled() || injected_open_failure()) return;
  auto impl = new Impl();
  int group = -1;
  for (int i = 0; i < kNumCounters; ++i) {
    const int fd = perf_open(event_spec(static_cast<CounterKind>(i)), group);
    impl->fds[static_cast<std::size_t>(i)] = fd;
    if (fd >= 0 && group == -1) group = fd;
  }
  if (group == -1) {
    delete impl;  // nothing opened: whole group unavailable
    return;
  }
  impl_ = impl;
}

PerfCounters::~PerfCounters() { delete impl_; }

PerfCounters::PerfCounters(PerfCounters&& other) noexcept
    : impl_(other.impl_) {
  other.impl_ = nullptr;
}

PerfCounters& PerfCounters::operator=(PerfCounters&& other) noexcept {
  if (this != &other) {
    delete impl_;
    impl_ = other.impl_;
    other.impl_ = nullptr;
  }
  return *this;
}

bool PerfCounters::available() const { return impl_ != nullptr; }

void PerfCounters::start() {
  if (!impl_) return;
  const int fd = impl_->leader();
  ioctl(fd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void PerfCounters::stop() {
  if (!impl_) return;
  ioctl(impl_->leader(), PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
}

CounterReadings PerfCounters::read() const {
  CounterReadings out;
  if (!impl_) return out;
  for (int i = 0; i < kNumCounters; ++i) {
    const int fd = impl_->fds[static_cast<std::size_t>(i)];
    if (fd < 0) continue;
    // read_format: value, time_enabled, time_running.
    std::uint64_t buf[3] = {0, 0, 0};
    const ssize_t rd = ::read(fd, buf, sizeof(buf));
    if (rd != static_cast<ssize_t>(sizeof(buf))) continue;
    std::uint64_t value = buf[0];
    if (buf[2] > 0 && buf[2] < buf[1]) {
      // Multiplexed: scale up by enabled/running (standard perf estimate).
      value = static_cast<std::uint64_t>(
          static_cast<double>(value) * static_cast<double>(buf[1]) /
          static_cast<double>(buf[2]));
    }
    out.counts[static_cast<std::size_t>(i)] = CounterValue{value, true};
    if (out.time_enabled_ns == 0) {
      out.time_enabled_ns = buf[1];
      out.time_running_ns = buf[2];
    }
  }
  return out;
}

bool PerfCounters::probe() {
  if (disabled()) return false;
  static const bool ok = [] {
    const int fd = perf_open(event_spec(CounterKind::kCycles), -1);
    if (fd < 0) return false;
    close(fd);
    return true;
  }();
  return ok && !disabled();
}

std::string describe_counter_support() {
  if (disabled()) {
    return "perf counters: disabled (RT_OBS_DISABLE / force_unavailable)";
  }
  if (PerfCounters::probe()) return "perf counters: available";
  const int err = g_first_open_errno.load();
  std::string why = err != 0 ? std::strerror(err) : "unknown";
  return "perf counters: unavailable (perf_event_open failed: " + why + ")";
}

#else  // !RT_OBS_HAVE_PERF

struct PerfCounters::Impl {};

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() { delete impl_; }
PerfCounters::PerfCounters(PerfCounters&& other) noexcept
    : impl_(other.impl_) {
  other.impl_ = nullptr;
}
PerfCounters& PerfCounters::operator=(PerfCounters&& other) noexcept {
  if (this != &other) {
    delete impl_;
    impl_ = other.impl_;
    other.impl_ = nullptr;
  }
  return *this;
}
bool PerfCounters::available() const { return false; }
void PerfCounters::start() {}
void PerfCounters::stop() {}
CounterReadings PerfCounters::read() const { return CounterReadings{}; }
bool PerfCounters::probe() { return false; }

std::string describe_counter_support() {
  return "perf counters: unavailable (not a Linux build)";
}

#endif  // RT_OBS_HAVE_PERF

void PerfCounters::force_unavailable(bool on) {
  g_force_unavailable.store(on);
}

const char* counter_mode_name(CounterMode m) {
  switch (m) {
    case CounterMode::kOff: return "off";
    case CounterMode::kAuto: return "auto";
    case CounterMode::kOn: return "on";
  }
  return "?";
}

bool parse_counter_mode(const std::string& s, CounterMode* out) {
  if (s == "off") {
    *out = CounterMode::kOff;
  } else if (s == "auto") {
    *out = CounterMode::kAuto;
  } else if (s == "on") {
    *out = CounterMode::kOn;
  } else {
    return false;
  }
  return true;
}

bool counters_enabled(CounterMode m) {
  switch (m) {
    case CounterMode::kOff: return false;
    case CounterMode::kAuto: return PerfCounters::probe();
    case CounterMode::kOn: return true;
  }
  return false;
}

}  // namespace rt::obs
