#pragma once
// Scoped wall-clock phase timing for the bench runner and the parallel
// kernels: cheap enough to wrap every warm-up / measured step, and a
// mutex-guarded variant for per-sweep timing inside rt::par workers.
//
//   PhaseStats warmup;
//   { ScopedTimer t(warmup); step(); }          // one timed phase
//   warmup.count, warmup.total_s, warmup.mean_s()
//
// PhaseStats is a plain value (copyable, no synchronisation) so it can sit
// inside result structs; ConcurrentPhaseStats wraps one behind a mutex for
// concurrent add() from pool workers and hands out consistent snapshots.

#include <chrono>
#include <mutex>

namespace rt::obs {

/// Accumulated timings of one named phase.  Times in seconds.
struct PhaseStats {
  long count = 0;
  double total_s = 0;
  double min_s = 0;
  double max_s = 0;

  void add(double seconds) {
    if (count == 0 || seconds < min_s) min_s = seconds;
    if (count == 0 || seconds > max_s) max_s = seconds;
    ++count;
    total_s += seconds;
  }
  double mean_s() const { return count > 0 ? total_s / count : 0.0; }
};

/// Thread-safe PhaseStats for concurrent add() from rt::par workers.
class ConcurrentPhaseStats {
 public:
  void add(double seconds) {
    std::lock_guard<std::mutex> lock(m_);
    stats_.add(seconds);
  }
  PhaseStats snapshot() const {
    std::lock_guard<std::mutex> lock(m_);
    return stats_;
  }

 private:
  mutable std::mutex m_;
  PhaseStats stats_;
};

/// RAII timer: measures from construction to destruction (or stop()) and
/// adds the elapsed seconds to the bound stats object.
class ScopedTimer {
 public:
  explicit ScopedTimer(PhaseStats& s) : plain_(&s) {}
  explicit ScopedTimer(ConcurrentPhaseStats& s) : shared_(&s) {}
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Record now instead of at destruction (idempotent).
  void stop() {
    if (done_) return;
    done_ = true;
    const double s =
        std::chrono::duration<double>(clock::now() - t0_).count();
    if (plain_ != nullptr) plain_->add(s);
    if (shared_ != nullptr) shared_->add(s);
  }

 private:
  using clock = std::chrono::steady_clock;
  PhaseStats* plain_ = nullptr;
  ConcurrentPhaseStats* shared_ = nullptr;
  clock::time_point t0_ = clock::now();
  bool done_ = false;
};

}  // namespace rt::obs
