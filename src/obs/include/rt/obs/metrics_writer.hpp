#pragma once
// Minimal JSON metrics emitter: the C++ replacement for the jq reshaping in
// scripts/bench_to_json.sh.  Benches build flat records (one per measured
// configuration), MetricsWriter serializes them as a JSON array matching
// the results/BENCH_*.json schema — stable key order, correct string
// escaping, round-trippable numbers.
//
// Deliberately not a JSON parser or a general DOM: JsonValue supports
// exactly what the schema needs (null, bool, integer, double, string,
// array, ordered object), so the golden-file test in tests/obs_test.cpp
// pins the byte-exact output.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rt/guard/status.hpp"

namespace rt::obs {

/// One JSON value.  Objects keep insertion order (schema readability and
/// byte-stable goldens); set() replaces an existing key in place.
class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  // Spelled as the fundamental integer types (not the <cstdint> aliases,
  // which collide with them on LP64) so every integral argument converts
  // without ambiguity against the double overload.
  JsonValue(long long i) : kind_(Kind::kInt), int_(i) {}
  JsonValue(unsigned long long u) : JsonValue(static_cast<long long>(u)) {}
  JsonValue(int i) : JsonValue(static_cast<long long>(i)) {}
  JsonValue(long i) : JsonValue(static_cast<long long>(i)) {}
  JsonValue(unsigned long u) : JsonValue(static_cast<long long>(u)) {}
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}

  static JsonValue array() { return JsonValue(Kind::kArray); }
  static JsonValue object() { return JsonValue(Kind::kObject); }

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  /// Scalar readers for parsed documents (json_parse): each returns
  /// @p fallback when the value is not of the requested kind.  Numbers
  /// convert between the integer and double representations.
  bool as_bool(bool fallback = false) const {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const {
    if (kind_ == Kind::kInt) return int_;
    if (kind_ == Kind::kDouble) return static_cast<std::int64_t>(double_);
    return fallback;
  }
  double as_double(double fallback = 0) const {
    if (kind_ == Kind::kDouble) return double_;
    if (kind_ == Kind::kInt) return static_cast<double>(int_);
    return fallback;
  }
  std::string as_string(const std::string& fallback = {}) const {
    return kind_ == Kind::kString ? str_ : fallback;
  }

  /// Object access: set (insert or replace) and lookup (null if absent).
  JsonValue& set(const std::string& key, JsonValue v);
  const JsonValue* find(const std::string& key) const;

  /// Array append.
  JsonValue& push_back(JsonValue v);
  std::size_t size() const { return items_.size(); }
  /// Element access for parsed arrays/objects (nullptr when out of range).
  const JsonValue* at(std::size_t i) const {
    return i < items_.size() ? &items_[i] : nullptr;
  }
  /// Key of object entry @p i ("" when out of range; pairs with at()).
  const std::string& key_at(std::size_t i) const;

  /// Serialize.  indent < 0: compact one-line; indent >= 0: pretty-printed
  /// with that many spaces per level (the results/ files use 2).
  std::string dump(int indent = -1) const;

  /// Format a double the way dump() does (shortest round-trip form) —
  /// exposed for tests.
  static std::string format_double(double d);

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  explicit JsonValue(Kind k) : kind_(k) {}
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;              // array elements
  std::vector<std::string> keys_;             // object keys (with items_)
};

/// Escape a string for embedding in JSON (quotes not included).
std::string json_escape(const std::string& s);

/// Parse a complete JSON document into a JsonValue.  The counterpart of
/// dump() — added for the rt::tune plan store, which must read back what
/// MetricsWriter-style code wrote.  Strict where it matters for durable
/// state: trailing garbage, truncated input, bad escapes, and nesting
/// deeper than 64 levels are all rejected (returns false, *out untouched,
/// @p err set to a one-line reason with the byte offset).  Accepts any
/// value as the top level, \uXXXX escapes (BMP, encoded as UTF-8), and
/// both integer and double number forms (integers that fit int64 stay
/// integers, everything else parses as double).
bool json_parse(const std::string& text, JsonValue* out,
                std::string* err = nullptr);

/// Accumulates flat records and writes them as a JSON array.
///
///   MetricsWriter w;
///   JsonValue& rec = w.add_record();
///   rec.set("kernel", "JACOBI").set("n", 200L).set("mflops", 3873.3);
///   w.write_file("results/BENCH_3.json");
class MetricsWriter {
 public:
  /// Append an empty object record and return a reference to fill in.
  /// (References stay valid: records are heap-allocated individually.)
  JsonValue& add_record();

  std::size_t num_records() const { return records_.size(); }

  /// The whole document as a pretty-printed JSON array (trailing newline).
  std::string dump() const;

  /// Write dump() to @p path; returns false (and leaves a partial file at
  /// worst) if the file cannot be opened or written.  Thin wrapper over
  /// write_file_checked for callers that only need pass/fail.
  bool write_file(const std::string& path) const;

  /// Checked write with a *typed* outcome: records must land complete or
  /// the caller must know why they did not — a truncated JSON array is
  /// worse than no file, and once output can be a pipe or socket
  /// (rt::serve), short writes are routine, not exotic.
  ///   kOk               everything reached stable storage (write + flush)
  ///   kInvalidArgument  the path cannot be opened for writing
  ///   kIoError          a short write or failed flush/close (full disk,
  ///                     closed pipe; errno text in @p detail)
  /// @p detail (optional) receives a one-line reason on failure.
  rt::guard::Status write_file_checked(const std::string& path,
                                       std::string* detail = nullptr) const;

  /// The checked writer over an already-open file descriptor (sockets,
  /// pipes): writes dump() fully or reports kIoError with the errno text.
  /// The caller should ignore SIGPIPE process-wide (rt::serve does) so a
  /// closed peer surfaces here as EPIPE instead of killing the process.
  rt::guard::Status write_fd_checked(int fd, std::string* detail = nullptr) const;

 private:
  std::vector<std::unique_ptr<JsonValue>> records_;
};

/// Write @p text fully to @p fd, retrying partial writes and EINTR.
/// Returns kOk, kTimeout (EAGAIN/EWOULDBLOCK — an SO_SNDTIMEO send
/// deadline expired, or the fd is non-blocking and full), or kIoError
/// (errno text in @p detail).  Shared by MetricsWriter::write_fd_checked
/// and the rt::serve request/response paths.
rt::guard::Status write_all_fd(int fd, const std::string& text,
                               std::string* detail = nullptr);

}  // namespace rt::obs
