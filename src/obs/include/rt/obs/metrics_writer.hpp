#pragma once
// Minimal JSON metrics emitter: the C++ replacement for the jq reshaping in
// scripts/bench_to_json.sh.  Benches build flat records (one per measured
// configuration), MetricsWriter serializes them as a JSON array matching
// the results/BENCH_*.json schema — stable key order, correct string
// escaping, round-trippable numbers.
//
// Deliberately not a JSON parser or a general DOM: JsonValue supports
// exactly what the schema needs (null, bool, integer, double, string,
// array, ordered object), so the golden-file test in tests/obs_test.cpp
// pins the byte-exact output.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rt::obs {

/// One JSON value.  Objects keep insertion order (schema readability and
/// byte-stable goldens); set() replaces an existing key in place.
class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  // Spelled as the fundamental integer types (not the <cstdint> aliases,
  // which collide with them on LP64) so every integral argument converts
  // without ambiguity against the double overload.
  JsonValue(long long i) : kind_(Kind::kInt), int_(i) {}
  JsonValue(unsigned long long u) : JsonValue(static_cast<long long>(u)) {}
  JsonValue(int i) : JsonValue(static_cast<long long>(i)) {}
  JsonValue(long i) : JsonValue(static_cast<long long>(i)) {}
  JsonValue(unsigned long u) : JsonValue(static_cast<long long>(u)) {}
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}

  static JsonValue array() { return JsonValue(Kind::kArray); }
  static JsonValue object() { return JsonValue(Kind::kObject); }

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Object access: set (insert or replace) and lookup (null if absent).
  JsonValue& set(const std::string& key, JsonValue v);
  const JsonValue* find(const std::string& key) const;

  /// Array append.
  JsonValue& push_back(JsonValue v);
  std::size_t size() const { return items_.size(); }

  /// Serialize.  indent < 0: compact one-line; indent >= 0: pretty-printed
  /// with that many spaces per level (the results/ files use 2).
  std::string dump(int indent = -1) const;

  /// Format a double the way dump() does (shortest round-trip form) —
  /// exposed for tests.
  static std::string format_double(double d);

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  explicit JsonValue(Kind k) : kind_(k) {}
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;              // array elements
  std::vector<std::string> keys_;             // object keys (with items_)
};

/// Escape a string for embedding in JSON (quotes not included).
std::string json_escape(const std::string& s);

/// Accumulates flat records and writes them as a JSON array.
///
///   MetricsWriter w;
///   JsonValue& rec = w.add_record();
///   rec.set("kernel", "JACOBI").set("n", 200L).set("mflops", 3873.3);
///   w.write_file("results/BENCH_3.json");
class MetricsWriter {
 public:
  /// Append an empty object record and return a reference to fill in.
  /// (References stay valid: records are heap-allocated individually.)
  JsonValue& add_record();

  std::size_t num_records() const { return records_.size(); }

  /// The whole document as a pretty-printed JSON array (trailing newline).
  std::string dump() const;

  /// Write dump() to @p path; returns false (and leaves a partial file at
  /// worst) if the file cannot be opened or written.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::unique_ptr<JsonValue>> records_;
};

}  // namespace rt::obs
