#pragma once
// Hardware performance counters over Linux perf_event_open: the real-machine
// complement to rt::cachesim.  The simulator predicts *why* a tiling plan
// should win (miss rates on the modelled UltraSparc2); this layer measures
// what the host actually did (cycles, instructions, L1D/LLC/dTLB load
// misses), so the two can be printed side by side (bench_hw_validation).
//
// Design constraints, in order:
//  * graceful degradation — unprivileged containers, CI runners and
//    non-Linux hosts must run every bench unchanged, reporting counters as
//    "unavailable" instead of erroring (perf_event_paranoid, missing PMU,
//    and seccomp all deny perf_event_open in the wild);
//  * per-counter degradation — a host that exposes cycles but not dTLB
//    misses still reports the counters it has (each event is opened
//    independently; failures mark just that slot invalid);
//  * RAII — counters are closed on destruction, and a moved-from group is
//    inert, so a PerfCounters member can live inside result structs.
//
// Multiplexing: all events are opened in one group (leader = first event
// that opens) so they are scheduled onto the PMU together; time_enabled /
// time_running are reported so callers can detect scaling.  With the small
// default set (5 events) groups normally run unmultiplexed.

#include <array>
#include <cstdint>
#include <string>

namespace rt::obs {

/// The counter slots PerfCounters knows how to open, in report order.
enum class CounterKind : int {
  kCycles = 0,        ///< PERF_COUNT_HW_CPU_CYCLES
  kInstructions,      ///< PERF_COUNT_HW_INSTRUCTIONS
  kL1dLoads,          ///< L1D cache read accesses
  kL1dLoadMisses,     ///< L1D cache read misses
  kLlcLoadMisses,     ///< last-level cache read misses
  kDtlbLoadMisses,    ///< dTLB read misses
};
inline constexpr int kNumCounters = 6;

/// Short stable name used in tables and JSON keys (e.g. "l1d_load_misses").
const char* counter_name(CounterKind k);

/// One counter's value after stop(): valid == false means the event could
/// not be opened (or was not requested) on this host.
struct CounterValue {
  std::uint64_t value = 0;
  bool valid = false;
};

/// A snapshot of every slot plus the group's scheduling times.
struct CounterReadings {
  std::array<CounterValue, kNumCounters> counts{};
  /// Nanoseconds the group was enabled / actually on the PMU.  When
  /// time_running < time_enabled the kernel multiplexed the group and the
  /// values are already scaled up by enabled/running.
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;

  const CounterValue& operator[](CounterKind k) const {
    return counts[static_cast<int>(k)];
  }
  /// True when at least one slot holds a real measurement.
  bool any_valid() const;
};

/// RAII group of hardware counters for the calling process (all threads:
/// the events are opened with inherit=1 so work done inside rt::par
/// workers is counted too).
///
///   PerfCounters pc;          // opens (or degrades to unavailable)
///   pc.start();
///   ... measured region ...
///   pc.stop();
///   CounterReadings r = pc.read();
///
/// All member functions are safe to call when unavailable: start/stop are
/// no-ops and read() returns all-invalid slots.
class PerfCounters {
 public:
  /// Opens the default event set.  Never throws: open failures leave the
  /// affected slots (or the whole group) unavailable.
  PerfCounters();
  ~PerfCounters();
  PerfCounters(PerfCounters&& other) noexcept;
  PerfCounters& operator=(PerfCounters&& other) noexcept;
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when at least one event opened.
  bool available() const;

  /// Reset and enable the group (no-op when unavailable).
  void start();
  /// Disable the group (no-op when unavailable).
  void stop();
  /// Read the stopped group; values are multiplex-scaled.  Returns
  /// all-invalid readings when unavailable.
  CounterReadings read() const;

  /// One-shot capability probe: can this process open a hardware cycles
  /// counter?  Cached after the first call (the answer cannot change
  /// mid-run); false on non-Linux builds, when the PMU is hidden (common
  /// in VMs), when perf_event_paranoid forbids it, or when counters are
  /// force-disabled (see below).
  static bool probe();

  /// Test/CI hook: force the unavailable path for every PerfCounters
  /// constructed afterwards, exactly as if perf_event_open were denied.
  /// Also settable from the environment: RT_OBS_DISABLE=1.
  static void force_unavailable(bool on);

 private:
  struct Impl;
  Impl* impl_ = nullptr;  // null when unavailable
};

/// Human-readable one-liner for why counters are off / degraded (for bench
/// headers): e.g. "perf counters: available" or
/// "perf counters: unavailable (perf_event_open failed: Permission denied)".
std::string describe_counter_support();

/// Bench-level counter policy (the --counters= flag).
enum class CounterMode {
  kOff,   ///< never open counters
  kAuto,  ///< open them when probe() says the host allows it
  kOn,    ///< always try; report unavailable (but keep running) on failure
};

const char* counter_mode_name(CounterMode m);

/// Parse "off" / "auto" / "on" (anything else returns false).
bool parse_counter_mode(const std::string& s, CounterMode* out);

/// Resolve a mode against the host capability probe: should this run open
/// a PerfCounters group?
bool counters_enabled(CounterMode m);

}  // namespace rt::obs
