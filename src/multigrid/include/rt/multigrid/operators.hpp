#pragma once
// NAS-MG-style multigrid operators (the substrate for the paper's MGRID
// experiment, Section 4.6).  All are templates over the accessor concept so
// the whole application can run natively (timing) or trace-driven through
// the cache simulator.
//
// Grids are (2^k + 2)^3 with one ghost layer and periodic boundaries kept
// consistent by comm3(), exactly like NAS MG / SPEC mgrid.  RESID itself
// lives in rt/kernels/resid.hpp (it is one of the paper's three kernels);
// here are the remaining operators: psinv (smoother), rprj3 (restriction),
// interp (prolongation), comm3, zero3 and norms.

#include <array>
#include <cmath>

#include "rt/core/cost.hpp"
#include "rt/kernels/oblivious.hpp"

namespace rt::multigrid {

/// Smoother coefficients: c[0] centre, c[1] faces, c[2] edges, c[3] corners.
using SmootherCoeffs = std::array<double, 4>;

/// NAS MG class-A/B smoother: (-3/8, 1/32, -1/64, 0).
inline SmootherCoeffs nas_mg_c() {
  return SmootherCoeffs{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0};
}

/// u += S r : 27-point smoother application (NAS MG psinv).
template <class U, class R>
void psinv(U& u, R& r, const SmootherCoeffs& c) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  for (long i3 = 1; i3 < n3 - 1; ++i3) {
    for (long i2 = 1; i2 < n2 - 1; ++i2) {
      for (long i1 = 1; i1 < n1 - 1; ++i1) {
        const double s1 = r.load(i1 - 1, i2, i3) + r.load(i1 + 1, i2, i3) +
                          r.load(i1, i2 - 1, i3) + r.load(i1, i2 + 1, i3) +
                          r.load(i1, i2, i3 - 1) + r.load(i1, i2, i3 + 1);
        const double s2 =
            r.load(i1 - 1, i2 - 1, i3) + r.load(i1 + 1, i2 - 1, i3) +
            r.load(i1 - 1, i2 + 1, i3) + r.load(i1 + 1, i2 + 1, i3) +
            r.load(i1, i2 - 1, i3 - 1) + r.load(i1, i2 + 1, i3 - 1) +
            r.load(i1, i2 - 1, i3 + 1) + r.load(i1, i2 + 1, i3 + 1) +
            r.load(i1 - 1, i2, i3 - 1) + r.load(i1 - 1, i2, i3 + 1) +
            r.load(i1 + 1, i2, i3 - 1) + r.load(i1 + 1, i2, i3 + 1);
        const double s3 =
            r.load(i1 - 1, i2 - 1, i3 - 1) + r.load(i1 + 1, i2 - 1, i3 - 1) +
            r.load(i1 - 1, i2 + 1, i3 - 1) + r.load(i1 + 1, i2 + 1, i3 - 1) +
            r.load(i1 - 1, i2 - 1, i3 + 1) + r.load(i1 + 1, i2 - 1, i3 + 1) +
            r.load(i1 - 1, i2 + 1, i3 + 1) + r.load(i1 + 1, i2 + 1, i3 + 1);
        u.store(i1, i2, i3,
                u.load(i1, i2, i3) + c[0] * r.load(i1, i2, i3) + c[1] * s1 +
                    c[2] * s2 + c[3] * s3);
      }
    }
  }
}

/// Tiled psinv: same I2/I1 strip-mining as tiled RESID.
template <class U, class R>
void psinv_tiled(U& u, R& r, const SmootherCoeffs& c, rt::core::IterTile t) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  for (long ii2 = 1; ii2 < n2 - 1; ii2 += t.tj) {
    const long i2hi = std::min(ii2 + t.tj, n2 - 1);
    for (long ii1 = 1; ii1 < n1 - 1; ii1 += t.ti) {
      const long i1hi = std::min(ii1 + t.ti, n1 - 1);
      for (long i3 = 1; i3 < n3 - 1; ++i3) {
        for (long i2 = ii2; i2 < i2hi; ++i2) {
          for (long i1 = ii1; i1 < i1hi; ++i1) {
            const double s1 = r.load(i1 - 1, i2, i3) + r.load(i1 + 1, i2, i3) +
                              r.load(i1, i2 - 1, i3) + r.load(i1, i2 + 1, i3) +
                              r.load(i1, i2, i3 - 1) + r.load(i1, i2, i3 + 1);
            const double s2 =
                r.load(i1 - 1, i2 - 1, i3) + r.load(i1 + 1, i2 - 1, i3) +
                r.load(i1 - 1, i2 + 1, i3) + r.load(i1 + 1, i2 + 1, i3) +
                r.load(i1, i2 - 1, i3 - 1) + r.load(i1, i2 + 1, i3 - 1) +
                r.load(i1, i2 - 1, i3 + 1) + r.load(i1, i2 + 1, i3 + 1) +
                r.load(i1 - 1, i2, i3 - 1) + r.load(i1 - 1, i2, i3 + 1) +
                r.load(i1 + 1, i2, i3 - 1) + r.load(i1 + 1, i2, i3 + 1);
            const double s3 = r.load(i1 - 1, i2 - 1, i3 - 1) +
                              r.load(i1 + 1, i2 - 1, i3 - 1) +
                              r.load(i1 - 1, i2 + 1, i3 - 1) +
                              r.load(i1 + 1, i2 + 1, i3 - 1) +
                              r.load(i1 - 1, i2 - 1, i3 + 1) +
                              r.load(i1 + 1, i2 - 1, i3 + 1) +
                              r.load(i1 - 1, i2 + 1, i3 + 1) +
                              r.load(i1 + 1, i2 + 1, i3 + 1);
            u.store(i1, i2, i3,
                    u.load(i1, i2, i3) + c[0] * r.load(i1, i2, i3) +
                        c[1] * s1 + c[2] * s2 + c[3] * s3);
          }
        }
      }
    }
  }
}

/// Cache-oblivious psinv: recursive (I2, I1) decomposition down to
/// @p base (rt::kernels::co_over), I3 untiled inside each block.  Pure
/// gather from r, so block order cannot change a single update.
template <class U, class R>
void psinv_oblivious(U& u, R& r, const SmootherCoeffs& c,
                     rt::core::IterTile base) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  rt::kernels::co_over(
      1, n1 - 1, 1, n2 - 1, base.ti, base.tj,
      [&](long i1lo, long i1hi, long i2lo, long i2hi) {
        for (long i3 = 1; i3 < n3 - 1; ++i3) {
          for (long i2 = i2lo; i2 < i2hi; ++i2) {
            for (long i1 = i1lo; i1 < i1hi; ++i1) {
              const double s1 =
                  r.load(i1 - 1, i2, i3) + r.load(i1 + 1, i2, i3) +
                  r.load(i1, i2 - 1, i3) + r.load(i1, i2 + 1, i3) +
                  r.load(i1, i2, i3 - 1) + r.load(i1, i2, i3 + 1);
              const double s2 =
                  r.load(i1 - 1, i2 - 1, i3) + r.load(i1 + 1, i2 - 1, i3) +
                  r.load(i1 - 1, i2 + 1, i3) + r.load(i1 + 1, i2 + 1, i3) +
                  r.load(i1, i2 - 1, i3 - 1) + r.load(i1, i2 + 1, i3 - 1) +
                  r.load(i1, i2 - 1, i3 + 1) + r.load(i1, i2 + 1, i3 + 1) +
                  r.load(i1 - 1, i2, i3 - 1) + r.load(i1 - 1, i2, i3 + 1) +
                  r.load(i1 + 1, i2, i3 - 1) + r.load(i1 + 1, i2, i3 + 1);
              const double s3 = r.load(i1 - 1, i2 - 1, i3 - 1) +
                                r.load(i1 + 1, i2 - 1, i3 - 1) +
                                r.load(i1 - 1, i2 + 1, i3 - 1) +
                                r.load(i1 + 1, i2 + 1, i3 - 1) +
                                r.load(i1 - 1, i2 - 1, i3 + 1) +
                                r.load(i1 + 1, i2 - 1, i3 + 1) +
                                r.load(i1 - 1, i2 + 1, i3 + 1) +
                                r.load(i1 + 1, i2 + 1, i3 + 1);
              u.store(i1, i2, i3,
                      u.load(i1, i2, i3) + c[0] * r.load(i1, i2, i3) +
                          c[1] * s1 + c[2] * s2 + c[3] * s3);
            }
          }
        }
      });
}

/// Full-weighting restriction: fine residual r -> coarse residual s.
/// Coarse interior j (0-based) maps to fine centre i = 2j - 1.
template <class S, class R>
void rprj3(S& s, R& r) {
  const long m1 = s.n1(), m2 = s.n2(), m3 = s.n3();
  for (long j3 = 1; j3 < m3 - 1; ++j3) {
    const long i3 = 2 * j3 - 1;
    for (long j2 = 1; j2 < m2 - 1; ++j2) {
      const long i2 = 2 * j2 - 1;
      for (long j1 = 1; j1 < m1 - 1; ++j1) {
        const long i1 = 2 * j1 - 1;
        double faces = 0, edges = 0, corners = 0;
        for (int d3 = -1; d3 <= 1; ++d3) {
          for (int d2 = -1; d2 <= 1; ++d2) {
            for (int d1 = -1; d1 <= 1; ++d1) {
              const int m = std::abs(d1) + std::abs(d2) + std::abs(d3);
              if (m == 0) continue;
              const double v = r.load(i1 + d1, i2 + d2, i3 + d3);
              if (m == 1) faces += v;
              else if (m == 2) edges += v;
              else corners += v;
            }
          }
        }
        s.store(j1, j2, j3,
                0.5 * r.load(i1, i2, i3) + 0.25 * faces + 0.125 * edges +
                    0.0625 * corners);
      }
    }
  }
}

/// Trilinear prolongation: u_fine += P z_coarse.  Fine odd index i
/// coincides with coarse (i+1)/2; fine even index i averages coarse i/2 and
/// i/2 + 1 (ghosts supplied by comm3 on the coarse grid).
template <class U, class Z>
void interp_add(U& u, Z& z) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  const auto axis = [](long i, long (&idx)[2], double (&w)[2]) -> int {
    if (i & 1) {
      idx[0] = (i + 1) / 2;
      w[0] = 1.0;
      return 1;
    }
    idx[0] = i / 2;
    idx[1] = i / 2 + 1;
    w[0] = w[1] = 0.5;
    return 2;
  };
  for (long i3 = 1; i3 < n3 - 1; ++i3) {
    long k_idx[2];
    double k_w[2];
    const int kn = axis(i3, k_idx, k_w);
    for (long i2 = 1; i2 < n2 - 1; ++i2) {
      long j_idx[2];
      double j_w[2];
      const int jn = axis(i2, j_idx, j_w);
      for (long i1 = 1; i1 < n1 - 1; ++i1) {
        long i_idx[2];
        double i_w[2];
        const int in = axis(i1, i_idx, i_w);
        double acc = 0;
        for (int kk = 0; kk < kn; ++kk) {
          for (int jj = 0; jj < jn; ++jj) {
            for (int ii = 0; ii < in; ++ii) {
              acc += k_w[kk] * j_w[jj] * i_w[ii] *
                     z.load(i_idx[ii], j_idx[jj], k_idx[kk]);
            }
          }
        }
        u.store(i1, i2, i3, u.load(i1, i2, i3) + acc);
      }
    }
  }
}

/// Periodic boundary exchange: ghost layers copy the opposite interior face.
template <class A>
void comm3(A& u) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  for (long i3 = 1; i3 < n3 - 1; ++i3) {
    for (long i2 = 1; i2 < n2 - 1; ++i2) {
      u.store(0, i2, i3, u.load(n1 - 2, i2, i3));
      u.store(n1 - 1, i2, i3, u.load(1, i2, i3));
    }
    for (long i1 = 0; i1 < n1; ++i1) {
      u.store(i1, 0, i3, u.load(i1, n2 - 2, i3));
      u.store(i1, n2 - 1, i3, u.load(i1, 1, i3));
    }
  }
  for (long i2 = 0; i2 < n2; ++i2) {
    for (long i1 = 0; i1 < n1; ++i1) {
      u.store(i1, i2, 0, u.load(i1, i2, n3 - 2));
      u.store(i1, i2, n3 - 1, u.load(i1, i2, 1));
    }
  }
}

/// Clear the whole allocation (interior + ghosts).
template <class A>
void zero3(A& u) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  for (long i3 = 0; i3 < n3; ++i3) {
    for (long i2 = 0; i2 < n2; ++i2) {
      for (long i1 = 0; i1 < n1; ++i1) {
        u.store(i1, i2, i3, 0.0);
      }
    }
  }
}

struct Norms {
  double l2 = 0;
  double linf = 0;
};

/// L2 (rms over interior) and Linf norms (NAS MG norm2u3).
template <class A>
Norms norm2u3(A& u) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  double s = 0, m = 0;
  for (long i3 = 1; i3 < n3 - 1; ++i3) {
    for (long i2 = 1; i2 < n2 - 1; ++i2) {
      for (long i1 = 1; i1 < n1 - 1; ++i1) {
        const double v = u.load(i1, i2, i3);
        s += v * v;
        m = std::max(m, std::abs(v));
      }
    }
  }
  const double pts = static_cast<double>(n1 - 2) * (n2 - 2) * (n3 - 2);
  return Norms{std::sqrt(s / pts), m};
}

}  // namespace rt::multigrid
