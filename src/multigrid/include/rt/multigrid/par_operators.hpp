#pragma once
// Parallel accessor-template variants of the multigrid operators
// (rt/multigrid/operators.hpp) on a rt::par::ThreadPool — the threads-only
// fast path of MgSolver (--threads=N --simd=off).  Work decomposition
// follows rt/par/par_kernels.hpp: the JI tile grid for tiled PSINV, K
// planes otherwise.  Bit-identity argument per operator:
//   * psinv writes only u(., ., k) per plane work item and reads only r;
//   * rprj3 writes one coarse plane per item and reads only the fine grid;
//   * interp_add writes one fine plane per item and reads only the coarse
//     grid;
// so for any thread count each element is computed by exactly the serial
// expression on exactly the serial inputs.
//
// Thread-safety contract is rt::par's: concurrent load() anywhere plus
// concurrent store() to distinct elements.  TracedArray3D does NOT satisfy
// it — trace-driven simulation stays on the serial operators.

#include "rt/multigrid/operators.hpp"
#include "rt/par/par_kernels.hpp"
#include "rt/par/thread_pool.hpp"

namespace rt::multigrid {

using rt::par::ThreadPool;

/// Parallel untiled psinv: u += S r, one K plane per work item.
template <class U, class R>
void psinv_par(ThreadPool& pool, U& u, R& r, const SmootherCoeffs& c) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  pool.parallel_for(n3 - 2, [&](long kk) {
    const long i3 = kk + 1;
    for (long i2 = 1; i2 < n2 - 1; ++i2) {
      for (long i1 = 1; i1 < n1 - 1; ++i1) {
        const double s1 = r.load(i1 - 1, i2, i3) + r.load(i1 + 1, i2, i3) +
                          r.load(i1, i2 - 1, i3) + r.load(i1, i2 + 1, i3) +
                          r.load(i1, i2, i3 - 1) + r.load(i1, i2, i3 + 1);
        const double s2 =
            r.load(i1 - 1, i2 - 1, i3) + r.load(i1 + 1, i2 - 1, i3) +
            r.load(i1 - 1, i2 + 1, i3) + r.load(i1 + 1, i2 + 1, i3) +
            r.load(i1, i2 - 1, i3 - 1) + r.load(i1, i2 + 1, i3 - 1) +
            r.load(i1, i2 - 1, i3 + 1) + r.load(i1, i2 + 1, i3 + 1) +
            r.load(i1 - 1, i2, i3 - 1) + r.load(i1 - 1, i2, i3 + 1) +
            r.load(i1 + 1, i2, i3 - 1) + r.load(i1 + 1, i2, i3 + 1);
        const double s3 =
            r.load(i1 - 1, i2 - 1, i3 - 1) + r.load(i1 + 1, i2 - 1, i3 - 1) +
            r.load(i1 - 1, i2 + 1, i3 - 1) + r.load(i1 + 1, i2 + 1, i3 - 1) +
            r.load(i1 - 1, i2 - 1, i3 + 1) + r.load(i1 + 1, i2 - 1, i3 + 1) +
            r.load(i1 - 1, i2 + 1, i3 + 1) + r.load(i1 + 1, i2 + 1, i3 + 1);
        u.store(i1, i2, i3,
                u.load(i1, i2, i3) + c[0] * r.load(i1, i2, i3) + c[1] * s1 +
                    c[2] * s2 + c[3] * s3);
      }
    }
  });
}

/// Parallel tiled psinv over the JI tile grid (each tile sweeps full K).
template <class U, class R>
void psinv_tiled_par(ThreadPool& pool, U& u, R& r, const SmootherCoeffs& c,
                     rt::core::IterTile t) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  rt::par::parallel_for_tiles(
      pool, 1, n1 - 1, 1, n2 - 1, t,
      [&](long ii, long ihi, long jj, long jhi) {
        for (long i3 = 1; i3 < n3 - 1; ++i3) {
          for (long i2 = jj; i2 < jhi; ++i2) {
            for (long i1 = ii; i1 < ihi; ++i1) {
              const double s1 = r.load(i1 - 1, i2, i3) +
                                r.load(i1 + 1, i2, i3) +
                                r.load(i1, i2 - 1, i3) +
                                r.load(i1, i2 + 1, i3) +
                                r.load(i1, i2, i3 - 1) +
                                r.load(i1, i2, i3 + 1);
              const double s2 =
                  r.load(i1 - 1, i2 - 1, i3) + r.load(i1 + 1, i2 - 1, i3) +
                  r.load(i1 - 1, i2 + 1, i3) + r.load(i1 + 1, i2 + 1, i3) +
                  r.load(i1, i2 - 1, i3 - 1) + r.load(i1, i2 + 1, i3 - 1) +
                  r.load(i1, i2 - 1, i3 + 1) + r.load(i1, i2 + 1, i3 + 1) +
                  r.load(i1 - 1, i2, i3 - 1) + r.load(i1 - 1, i2, i3 + 1) +
                  r.load(i1 + 1, i2, i3 - 1) + r.load(i1 + 1, i2, i3 + 1);
              const double s3 = r.load(i1 - 1, i2 - 1, i3 - 1) +
                                r.load(i1 + 1, i2 - 1, i3 - 1) +
                                r.load(i1 - 1, i2 + 1, i3 - 1) +
                                r.load(i1 + 1, i2 + 1, i3 - 1) +
                                r.load(i1 - 1, i2 - 1, i3 + 1) +
                                r.load(i1 + 1, i2 - 1, i3 + 1) +
                                r.load(i1 - 1, i2 + 1, i3 + 1) +
                                r.load(i1 + 1, i2 + 1, i3 + 1);
              u.store(i1, i2, i3,
                      u.load(i1, i2, i3) + c[0] * r.load(i1, i2, i3) +
                          c[1] * s1 + c[2] * s2 + c[3] * s3);
            }
          }
        }
      });
}

/// Parallel full-weighting restriction, one coarse K plane per work item.
template <class S, class R>
void rprj3_par(ThreadPool& pool, S& s, R& r) {
  const long m1 = s.n1(), m2 = s.n2(), m3 = s.n3();
  pool.parallel_for(m3 - 2, [&](long kk) {
    const long j3 = kk + 1;
    const long i3 = 2 * j3 - 1;
    for (long j2 = 1; j2 < m2 - 1; ++j2) {
      const long i2 = 2 * j2 - 1;
      for (long j1 = 1; j1 < m1 - 1; ++j1) {
        const long i1 = 2 * j1 - 1;
        double faces = 0, edges = 0, corners = 0;
        for (int d3 = -1; d3 <= 1; ++d3) {
          for (int d2 = -1; d2 <= 1; ++d2) {
            for (int d1 = -1; d1 <= 1; ++d1) {
              const int m = std::abs(d1) + std::abs(d2) + std::abs(d3);
              if (m == 0) continue;
              const double v = r.load(i1 + d1, i2 + d2, i3 + d3);
              if (m == 1) faces += v;
              else if (m == 2) edges += v;
              else corners += v;
            }
          }
        }
        s.store(j1, j2, j3,
                0.5 * r.load(i1, i2, i3) + 0.25 * faces + 0.125 * edges +
                    0.0625 * corners);
      }
    }
  });
}

/// Parallel trilinear prolongation, one fine K plane per work item.
template <class U, class Z>
void interp_add_par(ThreadPool& pool, U& u, Z& z) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  const auto axis = [](long i, long (&idx)[2], double (&w)[2]) -> int {
    if (i & 1) {
      idx[0] = (i + 1) / 2;
      w[0] = 1.0;
      return 1;
    }
    idx[0] = i / 2;
    idx[1] = i / 2 + 1;
    w[0] = w[1] = 0.5;
    return 2;
  };
  pool.parallel_for(n3 - 2, [&](long kk) {
    const long i3 = kk + 1;
    long k_idx[2];
    double k_w[2];
    const int kn = axis(i3, k_idx, k_w);
    for (long i2 = 1; i2 < n2 - 1; ++i2) {
      long j_idx[2];
      double j_w[2];
      const int jn = axis(i2, j_idx, j_w);
      for (long i1 = 1; i1 < n1 - 1; ++i1) {
        long i_idx[2];
        double i_w[2];
        const int in = axis(i1, i_idx, i_w);
        double acc = 0;
        for (int kw = 0; kw < kn; ++kw) {
          for (int jw = 0; jw < jn; ++jw) {
            for (int iw = 0; iw < in; ++iw) {
              acc += k_w[kw] * j_w[jw] * i_w[iw] *
                     z.load(i_idx[iw], j_idx[jw], k_idx[kw]);
            }
          }
        }
        u.store(i1, i2, i3, u.load(i1, i2, i3) + acc);
      }
    }
  });
}

}  // namespace rt::multigrid
