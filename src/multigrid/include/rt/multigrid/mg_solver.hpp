#pragma once
// NAS-MG-style V-cycle solver of  A u = v  with periodic boundaries — the
// "MGRID" application of the paper's Section 4.6.  Supports:
//   * tiling RESID (and optionally PSINV) at the finest level with a tile
//     from rt::core (the paper tiles only the largest grid);
//   * padding the finest-level arrays (the paper's workaround of declaring
//     a new padded array, since MGRID's own 1D indexing prevents in-place
//     padding);
//   * optional trace-driven execution against a CacheHierarchy, so the
//     whole application's simulated cycles can be compared orig vs tiled;
//   * a host fast path (threads/simd options): the V-cycle operators run
//     through rt::par plane/tile decompositions and/or the rt::simd row
//     kernels, bit-identical to the serial accessor operators for any
//     thread count and SimdLevel (tests/mg_fastpath_test.cpp).  Per-level
//     arrays are allocated uninitialized and zeroed plane-parallel on the
//     pool, so on NUMA hosts each page is first touched — and therefore
//     placed — by a thread that later sweeps it.
//
// Instrumentation: per-operator wall-clock PhaseStats (resid/psinv/rprj3/
// interp/comm3/zero3/norm) accumulate across every call, and an optional
// hardware-counter group (counters option) measures each iterate() span;
// both surface in bench_mgrid's JSON records.

#include <cstdint>
#include <memory>
#include <vector>

#include "rt/array/address_space.hpp"
#include "rt/array/array3d.hpp"
#include "rt/cachesim/hierarchy.hpp"
#include "rt/core/plan.hpp"
#include "rt/kernels/resid.hpp"
#include "rt/multigrid/operators.hpp"
#include "rt/obs/perf_counters.hpp"
#include "rt/obs/phase_timer.hpp"
#include "rt/par/thread_pool.hpp"
#include "rt/simd/simd.hpp"

namespace rt::multigrid {

struct MgOptions {
  /// Number of levels; finest grid has n = 2^lt + 2 points per side
  /// (lt = 7 gives the paper's 130x130x130 reference size).
  int lt = 5;
  /// Coarsest level (>= 1).
  int lb = 1;
  /// Tile RESID at the finest level with this plan (tiled == false -> orig).
  rt::core::TilingPlan resid_plan{};
  /// Also tile PSINV at the finest level with the same tile.
  bool tile_psinv = false;
  /// Number of +1/-1 unit charges in the right-hand side.
  int charges = 20;
  /// RNG seed for charge placement (deterministic).
  std::uint64_t seed = 314159265;
  /// Inter-variable padding (paper Section 3.5): stagger array base
  /// addresses modulo this cache size so that same-index elements of
  /// different arrays never alias (e.g. V(i,j,k) on top of U(i,j,k) in
  /// RESID, which a back-to-back layout can produce by accident).
  /// 0 disables staggering.
  std::uint64_t stagger_mod_bytes = 16 * 1024;
  /// Host fast path: execution width of the operator sweeps (1 = serial,
  /// <= 0 = all hardware threads).  Ignored under trace-driven simulation:
  /// TracedArray3D mutates the shared hierarchy on every access, so the
  /// traced operators always run serially.
  int threads = 1;
  /// Host fast path: SIMD row-kernel mode for the operators (kOff keeps
  /// the historical accessor kernels).  Also ignored under simulation.
  rt::simd::SimdMode simd = rt::simd::SimdMode::kOff;
  /// Open a hardware-counter group around each iterate() /
  /// residual_norm() span (kAuto: only when the host permits
  /// perf_event_open; degrades gracefully to "unavailable").
  rt::obs::CounterMode counters = rt::obs::CounterMode::kOff;
};

class MgSolver {
 public:
  explicit MgSolver(const MgOptions& opts,
                    rt::cachesim::CacheHierarchy* hier = nullptr);

  /// Grid side length at level l (1-based levels, lt = finest).
  long level_n(int l) const { return (1L << l) + 2; }
  int lt() const { return opts_.lt; }

  /// Initialise u = 0 and the NAS-style +/-1 charge RHS.
  void setup();

  /// One full MG iteration: r = v - Au at the finest level, then a V-cycle
  /// correction.  Returns the L2 residual norm *before* the correction.
  double iterate();

  /// L2 norm of the current residual r = v - Au (recomputes resid).
  double residual_norm();

  const rt::array::Array3D<double>& u() const { return u_.back(); }
  const rt::array::Array3D<double>& v() const { return v_; }

  /// Total flops executed so far (analytic per-operator counts).
  std::uint64_t flops() const { return flops_; }

  /// Per-operator wall-clock phase timings, accumulated across all calls.
  struct Phases {
    rt::obs::PhaseStats resid, psinv, rprj3, interp, comm3, zero3, norm;
  };
  const Phases& phases() const { return phases_; }

  /// Actual execution width of the operator sweeps (1 when serial or
  /// trace-driven).
  int threads() const { return pool_ ? pool_->num_threads() : 1; }
  /// Resolved SIMD level of the fast path (kScalar when off or traced).
  rt::simd::SimdLevel simd_level() const { return lvl_; }

  /// True when the counters option opened a usable hardware group.
  bool counters_available() const;
  /// Accumulated hardware readings over every iterate()/residual_norm()
  /// span so far (all-invalid slots when counters are off/unavailable).
  const rt::obs::CounterReadings& hw() const { return hw_; }

 private:
  using Grid = rt::array::Array3D<double>;

  void resid_level(int l, Grid& r, Grid& v, Grid& u, bool allow_tile);
  void psinv_level(int l, Grid& u, Grid& r);
  void rprj3_level(Grid& coarse, Grid& fine);
  void interp_level(Grid& fine, Grid& coarse);
  void comm3_grid(Grid& g);
  void zero3_grid(Grid& g);

  /// V-cycle on the residual hierarchy (NAS mg3P).
  void mg3p();

  /// True when operators should use the par/simd implementations instead
  /// of the (possibly traced) accessor kernels.
  bool fast_path() const {
    return hier_ == nullptr &&
           (pool_ != nullptr || lvl_ != rt::simd::SimdLevel::kScalar);
  }
  /// First-touch initialization: zero the whole allocation plane-parallel
  /// on the pool (same bytes Grid's default construction writes serially).
  void first_touch_zero(Grid& g);
  /// norm2u3 with phase timing (always serial: ordered reduction).
  double norm_l2(Grid& g);
  void counters_begin();
  void counters_end();

  std::uint64_t base_of(const Grid& g) const;

  MgOptions opts_;
  rt::cachesim::CacheHierarchy* hier_ = nullptr;
  rt::array::AddressSpace space_;

  std::unique_ptr<rt::par::ThreadPool> pool_;
  rt::simd::SimdLevel lvl_ = rt::simd::SimdLevel::kScalar;

  std::vector<Grid> u_;  ///< solution per level (index l-1)
  std::vector<Grid> r_;  ///< residual per level
  Grid v_;               ///< RHS at finest level
  std::vector<std::uint64_t> u_base_, r_base_;
  std::uint64_t v_base_ = 0;

  std::uint64_t flops_ = 0;
  Phases phases_;
  std::unique_ptr<rt::obs::PerfCounters> pc_;
  rt::obs::CounterReadings hw_;
};

}  // namespace rt::multigrid
