#pragma once
// NAS-MG-style V-cycle solver of  A u = v  with periodic boundaries — the
// "MGRID" application of the paper's Section 4.6.  Supports:
//   * tiling RESID (and optionally PSINV) at the finest level with a tile
//     from rt::core (the paper tiles only the largest grid);
//   * padding the finest-level arrays (the paper's workaround of declaring
//     a new padded array, since MGRID's own 1D indexing prevents in-place
//     padding);
//   * optional trace-driven execution against a CacheHierarchy, so the
//     whole application's simulated cycles can be compared orig vs tiled.

#include <cstdint>
#include <memory>
#include <vector>

#include "rt/array/address_space.hpp"
#include "rt/array/array3d.hpp"
#include "rt/cachesim/hierarchy.hpp"
#include "rt/core/plan.hpp"
#include "rt/kernels/resid.hpp"
#include "rt/multigrid/operators.hpp"

namespace rt::multigrid {

struct MgOptions {
  /// Number of levels; finest grid has n = 2^lt + 2 points per side
  /// (lt = 7 gives the paper's 130x130x130 reference size).
  int lt = 5;
  /// Coarsest level (>= 1).
  int lb = 1;
  /// Tile RESID at the finest level with this plan (tiled == false -> orig).
  rt::core::TilingPlan resid_plan{};
  /// Also tile PSINV at the finest level with the same tile.
  bool tile_psinv = false;
  /// Number of +1/-1 unit charges in the right-hand side.
  int charges = 20;
  /// RNG seed for charge placement (deterministic).
  std::uint64_t seed = 314159265;
  /// Inter-variable padding (paper Section 3.5): stagger array base
  /// addresses modulo this cache size so that same-index elements of
  /// different arrays never alias (e.g. V(i,j,k) on top of U(i,j,k) in
  /// RESID, which a back-to-back layout can produce by accident).
  /// 0 disables staggering.
  std::uint64_t stagger_mod_bytes = 16 * 1024;
};

class MgSolver {
 public:
  explicit MgSolver(const MgOptions& opts,
                    rt::cachesim::CacheHierarchy* hier = nullptr);

  /// Grid side length at level l (1-based levels, lt = finest).
  long level_n(int l) const { return (1L << l) + 2; }
  int lt() const { return opts_.lt; }

  /// Initialise u = 0 and the NAS-style +/-1 charge RHS.
  void setup();

  /// One full MG iteration: r = v - Au at the finest level, then a V-cycle
  /// correction.  Returns the L2 residual norm *before* the correction.
  double iterate();

  /// L2 norm of the current residual r = v - Au (recomputes resid).
  double residual_norm();

  const rt::array::Array3D<double>& u() const { return u_.back(); }
  const rt::array::Array3D<double>& v() const { return v_; }

  /// Total flops executed so far (analytic per-operator counts).
  std::uint64_t flops() const { return flops_; }

 private:
  using Grid = rt::array::Array3D<double>;

  void resid_level(int l, Grid& r, Grid& v, Grid& u, bool allow_tile);
  void psinv_level(int l, Grid& u, Grid& r);
  void rprj3_level(Grid& coarse, Grid& fine);
  void interp_level(Grid& fine, Grid& coarse);
  void comm3_grid(Grid& g);
  void zero3_grid(Grid& g);

  /// V-cycle on the residual hierarchy (NAS mg3P).
  void mg3p();

  std::uint64_t base_of(const Grid& g) const;

  MgOptions opts_;
  rt::cachesim::CacheHierarchy* hier_ = nullptr;
  rt::array::AddressSpace space_;

  std::vector<Grid> u_;  ///< solution per level (index l-1)
  std::vector<Grid> r_;  ///< residual per level
  Grid v_;               ///< RHS at finest level
  std::vector<std::uint64_t> u_base_, r_base_;
  std::uint64_t v_base_ = 0;

  std::uint64_t flops_ = 0;
};

}  // namespace rt::multigrid
