#pragma once
// Red-black SOR Poisson solver: a second whole application built on the
// paper's kernels.  Where MGRID exercises RESID, this exercises REDBLACK —
// the kernel with the paper's largest tiling gains (Table 3: 120%+) —
// at application level: solve  ∇²u = f  on a Dirichlet box by red-black
// successive over-relaxation, optionally with the paper's fused+tiled
// schedule and padded arrays.
//
// The SOR update with relaxation factor w on a unit-spaced grid is
//   u <- (1 - w) u + (w / 6) (sum of 6 neighbours - h^2 f)
// which maps onto rt::kernels::rb_update with c1 = 1 - w, c2 = w / 6 when
// f = 0; the general f term is folded in by pre-scaling (see .cpp).
// Tiled and untiled runs are bitwise identical (tests assert it).

#include <cstdint>

#include "rt/array/array3d.hpp"
#include "rt/cachesim/hierarchy.hpp"
#include "rt/core/plan.hpp"

namespace rt::multigrid {

struct SorOptions {
  long n = 66;          ///< grid points per side (incl. boundary)
  double omega = 1.5;   ///< over-relaxation factor (1 = Gauss-Seidel)
  /// Tiling plan for the sweeps (tiled == false -> naive two-pass).
  rt::core::TilingPlan plan{};
};

class SorSolver {
 public:
  explicit SorSolver(const SorOptions& opts,
                     rt::cachesim::CacheHierarchy* hier = nullptr);

  /// Set a deterministic RHS (point charges) and zero Dirichlet boundary.
  void setup(std::uint64_t seed = 42, int charges = 8);

  /// One full red-black sweep (both colours).
  void sweep();

  /// Residual max-norm of  ∇²u - f  over the interior.
  double residual_linf();

  /// Sweeps until residual < tol or max_sweeps; returns sweeps executed.
  int solve(double tol, int max_sweeps);

  const rt::array::Array3D<double>& u() const { return u_; }
  std::uint64_t flops() const { return flops_; }

 private:
  SorOptions opts_;
  rt::cachesim::CacheHierarchy* hier_;
  rt::array::Array3D<double> u_;
  rt::array::Array3D<double> rhs_;  ///< pre-scaled: (w/6) * h^2 * f
  rt::array::Array3D<double> f_;
  std::uint64_t u_base_ = 0, rhs_base_ = 0;
  std::uint64_t flops_ = 0;
};

}  // namespace rt::multigrid
