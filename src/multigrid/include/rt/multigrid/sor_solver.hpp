#pragma once
// Red-black SOR Poisson solver: a second whole application built on the
// paper's kernels.  Where MGRID exercises RESID, this exercises REDBLACK —
// the kernel with the paper's largest tiling gains (Table 3: 120%+) —
// at application level: solve  ∇²u = f  on a Dirichlet box by red-black
// successive over-relaxation, optionally with the paper's fused+tiled
// schedule and padded arrays.
//
// The SOR update with relaxation factor w on a unit-spaced grid is
//   u <- (1 - w) u + (w / 6) (sum of 6 neighbours - h^2 f)
// which maps onto rt::kernels::rb_update with c1 = 1 - w, c2 = w / 6 when
// f = 0; the general f term is folded in by pre-scaling (see .cpp).
// Tiled and untiled runs are bitwise identical (tests assert it).
//
// Host fast path (threads/simd options): sweeps run the two-pass
// colour-barrier schedule on a rt::par pool and/or the rt::simd row
// kernels — still bit-identical to the serial kernels (the colour barrier
// argument of rt/par/par_kernels.hpp).  Arrays are first-touch initialized
// on the pool for NUMA placement.  Trace-driven runs stay serial.
//
// Plan validation: a plan whose pad (dip/djp) does not cover the logical
// extent n cannot be applied; instead of silently clamping to unpadded
// dims (the historical behaviour), the constructor records
// Status::kFellBackUntiled — and kOverflow when the padded allocation size
// does not fit a long (Dims3::checked_alloc_elems) — and proceeds
// unpadded.  status()/status_detail() expose the outcome.

#include <cstdint>
#include <string>

#include "rt/array/array3d.hpp"
#include "rt/cachesim/hierarchy.hpp"
#include "rt/core/plan.hpp"
#include "rt/guard/status.hpp"
#include "rt/obs/phase_timer.hpp"
#include "rt/par/thread_pool.hpp"
#include "rt/simd/simd.hpp"

#include <memory>

namespace rt::multigrid {

struct SorOptions {
  long n = 66;          ///< grid points per side (incl. boundary)
  double omega = 1.5;   ///< over-relaxation factor (1 = Gauss-Seidel)
  /// Tiling plan for the sweeps (tiled == false -> naive two-pass).
  rt::core::TilingPlan plan{};
  /// Host fast path: execution width of the sweeps (1 = serial, <= 0 =
  /// all hardware threads).  Ignored under trace-driven simulation.
  int threads = 1;
  /// Host fast path: SIMD row-kernel mode (kOff keeps accessor kernels).
  rt::simd::SimdMode simd = rt::simd::SimdMode::kOff;
};

class SorSolver {
 public:
  explicit SorSolver(const SorOptions& opts,
                     rt::cachesim::CacheHierarchy* hier = nullptr);

  /// Set a deterministic RHS (point charges) and zero Dirichlet boundary.
  void setup(std::uint64_t seed = 42, int charges = 8);

  /// One full red-black sweep (both colours).
  void sweep();

  /// Residual max-norm of  ∇²u - f  over the interior.
  double residual_linf();

  /// Sweeps until residual < tol or max_sweeps; returns sweeps executed.
  int solve(double tol, int max_sweeps);

  const rt::array::Array3D<double>& u() const { return u_; }
  std::uint64_t flops() const { return flops_; }

  /// Construction outcome: kOk, or the degradation the solver applied
  /// (kFellBackUntiled: plan pad smaller than n dropped; kOverflow:
  /// padded allocation size overflowed, dims fell back to unpadded).
  rt::guard::Status status() const { return status_; }
  const std::string& status_detail() const { return detail_; }

  /// Actual execution width (1 when serial or trace-driven).
  int threads() const { return pool_ ? pool_->num_threads() : 1; }
  /// Resolved SIMD level of the fast path (kScalar when off or traced).
  rt::simd::SimdLevel simd_level() const { return lvl_; }

  /// Wall-clock phase timings accumulated across all calls.
  struct Phases {
    rt::obs::PhaseStats sweep, residual;
  };
  const Phases& phases() const { return phases_; }

 private:
  void first_touch_zero(rt::array::Array3D<double>& g);

  SorOptions opts_;
  rt::cachesim::CacheHierarchy* hier_;
  std::unique_ptr<rt::par::ThreadPool> pool_;
  rt::simd::SimdLevel lvl_ = rt::simd::SimdLevel::kScalar;
  rt::array::Array3D<double> u_;
  rt::array::Array3D<double> rhs_;  ///< pre-scaled: (w/6) * h^2 * f
  rt::array::Array3D<double> f_;
  std::uint64_t u_base_ = 0, rhs_base_ = 0;
  std::uint64_t flops_ = 0;
  rt::guard::Status status_ = rt::guard::Status::kOk;
  std::string detail_;
  Phases phases_;
};

}  // namespace rt::multigrid
