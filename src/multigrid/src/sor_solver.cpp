#include "rt/multigrid/sor_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rt/array/address_space.hpp"
#include "rt/cachesim/traced_array.hpp"
#include "rt/kernels/redblack.hpp"

namespace rt::multigrid {

namespace {
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1DULL;
  }
  long uniform(long n) { return static_cast<long>(next() % n); }
};
}  // namespace

SorSolver::SorSolver(const SorOptions& opts,
                     rt::cachesim::CacheHierarchy* hier)
    : opts_(opts), hier_(hier) {
  if (opts.n < 4 || opts.omega <= 0.0 || opts.omega >= 2.0) {
    throw std::invalid_argument("SorSolver: need n >= 4, 0 < omega < 2");
  }
  const long n = opts.n;
  rt::array::Dims3 d = rt::array::Dims3::unpadded(n, n, n);
  if (opts.plan.dip >= n && opts.plan.djp >= n) {
    d = rt::array::Dims3::padded(n, n, n, opts.plan.dip, opts.plan.djp);
  }
  u_ = rt::array::Array3D<double>(d);
  rhs_ = rt::array::Array3D<double>(d);
  f_ = rt::array::Array3D<double>(d);
  // Inter-variable padding (Section 3.5): keep u and rhs from aliasing.
  rt::array::AddressSpace space(0, 64);
  const auto elems = static_cast<std::uint64_t>(d.alloc_elems());
  u_base_ = space.place_mod("u", elems, 8, 16384, 0);
  rhs_base_ = space.place_mod("rhs", elems, 8, 16384, 8192);
}

void SorSolver::setup(std::uint64_t seed, int charges) {
  u_.fill(0.0);
  f_.fill(0.0);
  Rng rng{seed};
  const long n = opts_.n;
  for (int q = 0; q < charges; ++q) {
    const long i = 1 + rng.uniform(n - 2);
    const long j = 1 + rng.uniform(n - 2);
    const long k = 1 + rng.uniform(n - 2);
    f_(i, j, k) = (q % 2 == 0) ? 1.0 : -1.0;
  }
  // Pre-scale the constant term of the SOR update: -(w/6) h^2 f, h = 1.
  const double c = -(opts_.omega / 6.0);
  for (long k = 0; k < n; ++k) {
    for (long j = 0; j < n; ++j) {
      for (long i = 0; i < n; ++i) {
        rhs_(i, j, k) = c * f_(i, j, k);
      }
    }
  }
  flops_ = 0;
}

void SorSolver::sweep() {
  const double c1 = 1.0 - opts_.omega;
  const double c2 = opts_.omega / 6.0;
  if (hier_) {
    rt::cachesim::TracedArray3D<double> tu(u_, u_base_, *hier_);
    rt::cachesim::TracedArray3D<double> tr(rhs_, rhs_base_, *hier_);
    if (opts_.plan.tiled) {
      rt::kernels::redblack_tiled_rhs(tu, tr, c1, c2, opts_.plan.tile);
    } else {
      rt::kernels::redblack_naive_rhs(tu, tr, c1, c2);
    }
  } else {
    if (opts_.plan.tiled) {
      rt::kernels::redblack_tiled_rhs(u_, rhs_, c1, c2, opts_.plan.tile);
    } else {
      rt::kernels::redblack_naive_rhs(u_, rhs_, c1, c2);
    }
  }
  const auto pts = static_cast<std::uint64_t>(opts_.n - 2);
  flops_ += 10 * pts * pts * pts;
}

double SorSolver::residual_linf() {
  const long n = opts_.n;
  double m = 0.0;
  for (long k = 1; k < n - 1; ++k) {
    for (long j = 1; j < n - 1; ++j) {
      for (long i = 1; i < n - 1; ++i) {
        const double lap = u_(i - 1, j, k) + u_(i + 1, j, k) +
                           u_(i, j - 1, k) + u_(i, j + 1, k) +
                           u_(i, j, k - 1) + u_(i, j, k + 1) -
                           6.0 * u_(i, j, k);
        m = std::max(m, std::abs(lap - f_(i, j, k)));
      }
    }
  }
  return m;
}

int SorSolver::solve(double tol, int max_sweeps) {
  for (int s = 1; s <= max_sweeps; ++s) {
    sweep();
    if (residual_linf() < tol) return s;
  }
  return max_sweeps;
}

}  // namespace rt::multigrid
