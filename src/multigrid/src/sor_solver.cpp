#include "rt/multigrid/sor_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rt/array/address_space.hpp"
#include "rt/cachesim/traced_array.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/par/par_kernels.hpp"
#include "rt/simd/par_rows.hpp"
#include "rt/simd/row_kernels.hpp"

namespace rt::multigrid {

namespace {
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1DULL;
  }
  long uniform(long n) { return static_cast<long>(next() % n); }
};
}  // namespace

SorSolver::SorSolver(const SorOptions& opts,
                     rt::cachesim::CacheHierarchy* hier)
    : opts_(opts), hier_(hier) {
  if (opts.n < 4 || opts.omega <= 0.0 || opts.omega >= 2.0) {
    throw std::invalid_argument("SorSolver: need n >= 4, 0 < omega < 2");
  }
  if (hier_ == nullptr) {
    if (opts.threads != 1) {
      pool_ = std::make_unique<rt::par::ThreadPool>(opts.threads);
    }
    lvl_ = rt::simd::resolve(opts.simd);
  }
  const long n = opts.n;
  rt::array::Dims3 d = rt::array::Dims3::unpadded(n, n, n);
  if (opts.plan.dip != 0 || opts.plan.djp != 0) {
    if (opts.plan.dip >= n && opts.plan.djp >= n) {
      const rt::array::Dims3 padded =
          rt::array::Dims3::padded(n, n, n, opts.plan.dip, opts.plan.djp);
      // Route the allocation size through the overflow-checked product:
      // a plan with huge pads must degrade to a recorded fallback, not
      // wrap the p1*p2*n3 size computation.
      if (padded.checked_alloc_elems().has_value()) {
        d = padded;
      } else {
        status_ = rt::guard::Status::kOverflow;
        detail_ = "padded allocation size overflows long; running unpadded";
      }
    } else {
      // A pad below the logical extent cannot be applied.  The historical
      // behaviour silently clamped to unpadded dims, hiding plan bugs from
      // callers; record the degradation instead (tiling still runs).
      status_ = rt::guard::Status::kFellBackUntiled;
      detail_ = "plan pad (dip/djp) smaller than n; running unpadded";
    }
  }
  const bool first_touch = pool_ != nullptr;
  if (first_touch) {
    u_ = rt::array::Array3D<double>(d, rt::array::uninit);
    rhs_ = rt::array::Array3D<double>(d, rt::array::uninit);
    f_ = rt::array::Array3D<double>(d, rt::array::uninit);
    first_touch_zero(u_);
    first_touch_zero(rhs_);
    first_touch_zero(f_);
  } else {
    u_ = rt::array::Array3D<double>(d);
    rhs_ = rt::array::Array3D<double>(d);
    f_ = rt::array::Array3D<double>(d);
  }
  // Inter-variable padding (Section 3.5): keep u and rhs from aliasing.
  rt::array::AddressSpace space(0, 64);
  const auto elems = static_cast<std::uint64_t>(d.alloc_elems());
  u_base_ = space.place_mod("u", elems, 8, 16384, 0);
  rhs_base_ = space.place_mod("rhs", elems, 8, 16384, 8192);
}

void SorSolver::first_touch_zero(rt::array::Array3D<double>& g) {
  // Zero plane-parallel so each page's first write — and hence its NUMA
  // home — happens on a thread that will sweep that K range.
  double* base = g.data();
  const long plane = g.dims().plane_stride();
  pool_->parallel_for(g.n3(), [&](long k) {
    std::fill(base + k * plane, base + (k + 1) * plane, 0.0);
  });
}

void SorSolver::setup(std::uint64_t seed, int charges) {
  u_.fill(0.0);
  f_.fill(0.0);
  Rng rng{seed};
  const long n = opts_.n;
  for (int q = 0; q < charges; ++q) {
    const long i = 1 + rng.uniform(n - 2);
    const long j = 1 + rng.uniform(n - 2);
    const long k = 1 + rng.uniform(n - 2);
    f_(i, j, k) = (q % 2 == 0) ? 1.0 : -1.0;
  }
  // Pre-scale the constant term of the SOR update: -(w/6) h^2 f, h = 1.
  const double c = -(opts_.omega / 6.0);
  for (long k = 0; k < n; ++k) {
    for (long j = 0; j < n; ++j) {
      for (long i = 0; i < n; ++i) {
        rhs_(i, j, k) = c * f_(i, j, k);
      }
    }
  }
  flops_ = 0;
}

void SorSolver::sweep() {
  const double c1 = 1.0 - opts_.omega;
  const double c2 = opts_.omega / 6.0;
  {
    rt::obs::ScopedTimer timer(phases_.sweep);
    if (hier_) {
      rt::cachesim::TracedArray3D<double> tu(u_, u_base_, *hier_);
      rt::cachesim::TracedArray3D<double> tr(rhs_, rhs_base_, *hier_);
      if (opts_.plan.tiled) {
        rt::kernels::redblack_tiled_rhs(tu, tr, c1, c2, opts_.plan.tile);
      } else {
        rt::kernels::redblack_naive_rhs(tu, tr, c1, c2);
      }
    } else if (lvl_ != rt::simd::SimdLevel::kScalar && pool_) {
      if (opts_.plan.tiled) {
        rt::simd::redblack_tiled_rhs_rows_par(*pool_, u_, rhs_, c1, c2,
                                              opts_.plan.tile, lvl_);
      } else {
        rt::simd::redblack_rhs_rows_par(*pool_, u_, rhs_, c1, c2, lvl_);
      }
    } else if (lvl_ != rt::simd::SimdLevel::kScalar) {
      if (opts_.plan.tiled) {
        rt::simd::redblack_tiled_rhs_rows(u_, rhs_, c1, c2, opts_.plan.tile,
                                          lvl_);
      } else {
        rt::simd::redblack_rhs_rows(u_, rhs_, c1, c2, lvl_);
      }
    } else if (pool_) {
      if (opts_.plan.tiled) {
        rt::par::redblack_tiled_rhs_par(*pool_, u_, rhs_, c1, c2,
                                        opts_.plan.tile);
      } else {
        rt::par::redblack_rhs_par(*pool_, u_, rhs_, c1, c2);
      }
    } else {
      if (opts_.plan.tiled) {
        rt::kernels::redblack_tiled_rhs(u_, rhs_, c1, c2, opts_.plan.tile);
      } else {
        rt::kernels::redblack_naive_rhs(u_, rhs_, c1, c2);
      }
    }
  }
  const auto pts = static_cast<std::uint64_t>(opts_.n - 2);
  flops_ += 10 * pts * pts * pts;
}

double SorSolver::residual_linf() {
  rt::obs::ScopedTimer timer(phases_.residual);
  const long n = opts_.n;
  double m = 0.0;
  for (long k = 1; k < n - 1; ++k) {
    for (long j = 1; j < n - 1; ++j) {
      for (long i = 1; i < n - 1; ++i) {
        const double lap = u_(i - 1, j, k) + u_(i + 1, j, k) +
                           u_(i, j - 1, k) + u_(i, j + 1, k) +
                           u_(i, j, k - 1) + u_(i, j, k + 1) -
                           6.0 * u_(i, j, k);
        m = std::max(m, std::abs(lap - f_(i, j, k)));
      }
    }
  }
  return m;
}

int SorSolver::solve(double tol, int max_sweeps) {
  for (int s = 1; s <= max_sweeps; ++s) {
    sweep();
    if (residual_linf() < tol) return s;
  }
  return max_sweeps;
}

}  // namespace rt::multigrid
