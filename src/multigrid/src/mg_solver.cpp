#include "rt/multigrid/mg_solver.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "rt/cachesim/traced_array.hpp"
#include "rt/multigrid/par_operators.hpp"
#include "rt/simd/par_rows.hpp"
#include "rt/simd/row_kernels.hpp"

namespace rt::multigrid {

namespace {

using Grid = rt::array::Array3D<double>;
using GB = std::pair<Grid*, std::uint64_t>;
using rt::simd::SimdLevel;

/// Run op(fn) over grids either natively or through traced accessors.
template <class Fn, class... Gs>
void run_op(rt::cachesim::CacheHierarchy* h, Fn&& fn, Gs... gb) {
  if (h) {
    fn(rt::cachesim::TracedArray3D<double>(*gb.first, gb.second, *h)...);
  } else {
    fn(*gb.first...);
  }
}

std::uint64_t interior(const Grid& g) {
  return static_cast<std::uint64_t>(g.n1() - 2) *
         static_cast<std::uint64_t>(g.n2() - 2) *
         static_cast<std::uint64_t>(g.n3() - 2);
}

/// xorshift64* PRNG — deterministic charge placement.
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1DULL;
  }
  long uniform(long n) { return static_cast<long>(next() % n); }
};

}  // namespace

MgSolver::MgSolver(const MgOptions& opts, rt::cachesim::CacheHierarchy* hier)
    : opts_(opts), hier_(hier), space_(0, 64) {
  if (opts.lt < 2 || opts.lb < 1 || opts.lb >= opts.lt) {
    throw std::invalid_argument("MgSolver: need 1 <= lb < lt, lt >= 2");
  }
  // Host fast path only: trace-driven runs keep the serial accessor
  // operators (TracedArray3D is not thread-safe, and the row kernels
  // bypass the accessors entirely).
  if (hier_ == nullptr) {
    if (opts.threads != 1) {
      pool_ = std::make_unique<rt::par::ThreadPool>(opts.threads);
    }
    lvl_ = rt::simd::resolve(opts.simd);
  }
  if (rt::obs::counters_enabled(opts.counters)) {
    pc_ = std::make_unique<rt::obs::PerfCounters>();
  }
  u_.reserve(opts.lt);
  r_.reserve(opts.lt);
  // Inter-variable padding (Section 3.5): stagger consecutive arrays by a
  // quarter cache plus a line so same-index elements of different arrays
  // never land on the same set, whatever the (padded) array size is.
  int placed = 0;
  const auto place_grid = [&](const std::string& name, std::uint64_t elems) {
    if (opts_.stagger_mod_bytes == 0) return space_.place(name, elems);
    const std::uint64_t mod = opts_.stagger_mod_bytes;
    const std::uint64_t off = (static_cast<std::uint64_t>(placed++) *
                               (mod / 4 + 64)) % mod;
    return space_.place_mod(name, elems, 8, mod, off / 64 * 64);
  };
  for (int l = 1; l <= opts.lt; ++l) {
    const long n = level_n(l);
    rt::array::Dims3 d = rt::array::Dims3::unpadded(n, n, n);
    if (l == opts.lt && opts.resid_plan.dip >= n && opts.resid_plan.djp >= n) {
      d = rt::array::Dims3::padded(n, n, n, opts.resid_plan.dip,
                                   opts.resid_plan.djp);
    }
    if (pool_) {
      u_.emplace_back(d, rt::array::uninit);
      r_.emplace_back(d, rt::array::uninit);
    } else {
      u_.emplace_back(d);
      r_.emplace_back(d);
    }
    const auto elems = static_cast<std::uint64_t>(d.alloc_elems());
    u_base_.push_back(place_grid("u" + std::to_string(l), elems));
    r_base_.push_back(place_grid("r" + std::to_string(l), elems));
    if (l == opts.lt) {
      v_ = pool_ ? Grid(d, rt::array::uninit) : Grid(d);
      v_base_ = place_grid("v", elems);
    }
  }
  // First-touch placement: zero every allocation plane-parallel on the
  // pool, so each page's first write — and hence its NUMA home — happens
  // on a thread that will sweep that K range.  Same bytes as default
  // construction, just written by the right threads.
  if (pool_) {
    for (auto& g : u_) first_touch_zero(g);
    for (auto& g : r_) first_touch_zero(g);
    first_touch_zero(v_);
  }
}

void MgSolver::first_touch_zero(Grid& g) {
  double* base = g.data();
  const long plane = g.dims().plane_stride();
  pool_->parallel_for(g.n3(), [&](long k) {
    std::fill(base + k * plane, base + (k + 1) * plane, 0.0);
  });
}

std::uint64_t MgSolver::base_of(const Grid& g) const {
  for (std::size_t i = 0; i < u_.size(); ++i) {
    if (&g == &u_[i]) return u_base_[i];
    if (&g == &r_[i]) return r_base_[i];
  }
  if (&g == &v_) return v_base_;
  // A foreign grid here means a traced access would be attributed to a
  // wrong (or overlapping) base address, silently corrupting every cache
  // measurement — fail loudly in release builds too, not just under assert.
  throw std::logic_error("MgSolver::base_of: grid not owned by solver");
}

void MgSolver::comm3_grid(Grid& g) {
  rt::obs::ScopedTimer timer(phases_.comm3);
  run_op(hier_, [](auto&&... a) { comm3(a...); }, GB{&g, base_of(g)});
}

void MgSolver::zero3_grid(Grid& g) {
  rt::obs::ScopedTimer timer(phases_.zero3);
  if (fast_path() && pool_) {
    // Plane-parallel zero of the logical region (zeros are zeros: trivially
    // bit-identical to the serial zero3, whatever thread writes them).
    double* base = g.data();
    const long s1 = g.dims().column_stride();
    const long s2 = g.dims().plane_stride();
    const long n1 = g.n1(), n2 = g.n2();
    pool_->parallel_for(g.n3(), [&](long k) {
      for (long j = 0; j < n2; ++j) {
        double* row = base + s1 * j + s2 * k;
        std::fill(row, row + n1, 0.0);
      }
    });
    return;
  }
  run_op(hier_, [](auto&&... a) { zero3(a...); }, GB{&g, base_of(g)});
}

void MgSolver::resid_level(int l, Grid& r, Grid& v, Grid& u, bool allow_tile) {
  const bool tile = allow_tile && l == opts_.lt && opts_.resid_plan.tiled;
  const auto a = rt::kernels::nas_mg_a();
  const rt::core::IterTile t = opts_.resid_plan.tile;
  {
    rt::obs::ScopedTimer timer(phases_.resid);
    if (fast_path()) {
      if (lvl_ != SimdLevel::kScalar && pool_) {
        if (tile) {
          rt::simd::resid_tiled_rows_par(*pool_, r, v, u, a, t, lvl_);
        } else {
          rt::simd::resid_rows_par(*pool_, r, v, u, a, lvl_);
        }
      } else if (lvl_ != SimdLevel::kScalar) {
        if (tile) {
          rt::simd::resid_tiled_rows(r, v, u, a, t, lvl_);
        } else {
          rt::simd::resid_rows(r, v, u, a, lvl_);
        }
      } else {
        if (tile) {
          rt::par::resid_tiled_par(*pool_, r, v, u, a, t);
        } else {
          rt::par::resid_par(*pool_, r, v, u, a);
        }
      }
    } else {
      run_op(
          hier_,
          [&](auto&& ra, auto&& va, auto&& ua) {
            if (tile) {
              rt::kernels::resid_tiled(ra, va, ua, a, t);
            } else {
              rt::kernels::resid(ra, va, ua, a);
            }
          },
          GB{&r, base_of(r)}, GB{&v, base_of(v)}, GB{&u, base_of(u)});
    }
  }
  flops_ += 31 * interior(r);
  comm3_grid(r);
}

void MgSolver::psinv_level(int l, Grid& u, Grid& r) {
  const bool tile = opts_.tile_psinv && l == opts_.lt && opts_.resid_plan.tiled;
  const auto c = nas_mg_c();
  const rt::core::IterTile t = opts_.resid_plan.tile;
  {
    rt::obs::ScopedTimer timer(phases_.psinv);
    if (fast_path()) {
      if (lvl_ != SimdLevel::kScalar && pool_) {
        if (tile) {
          rt::simd::psinv_tiled_rows_par(*pool_, u, r, c, t, lvl_);
        } else {
          rt::simd::psinv_rows_par(*pool_, u, r, c, lvl_);
        }
      } else if (lvl_ != SimdLevel::kScalar) {
        if (tile) {
          rt::simd::psinv_tiled_rows(u, r, c, t, lvl_);
        } else {
          rt::simd::psinv_rows(u, r, c, lvl_);
        }
      } else {
        if (tile) {
          psinv_tiled_par(*pool_, u, r, c, t);
        } else {
          psinv_par(*pool_, u, r, c);
        }
      }
    } else {
      run_op(
          hier_,
          [&](auto&& ua, auto&& ra) {
            if (tile) {
              psinv_tiled(ua, ra, c, t);
            } else {
              psinv(ua, ra, c);
            }
          },
          GB{&u, base_of(u)}, GB{&r, base_of(r)});
    }
  }
  flops_ += 31 * interior(u);
  comm3_grid(u);
}

void MgSolver::rprj3_level(Grid& coarse, Grid& fine) {
  {
    rt::obs::ScopedTimer timer(phases_.rprj3);
    if (fast_path()) {
      if (lvl_ != SimdLevel::kScalar && pool_) {
        rt::simd::rprj3_rows_par(*pool_, coarse, fine, lvl_);
      } else if (lvl_ != SimdLevel::kScalar) {
        rt::simd::rprj3_rows(coarse, fine, lvl_);
      } else {
        rprj3_par(*pool_, coarse, fine);
      }
    } else {
      run_op(hier_, [](auto&& s, auto&& r) { rprj3(s, r); },
             GB{&coarse, base_of(coarse)}, GB{&fine, base_of(fine)});
    }
  }
  flops_ += 30 * interior(coarse);
  comm3_grid(coarse);
}

void MgSolver::interp_level(Grid& fine, Grid& coarse) {
  {
    rt::obs::ScopedTimer timer(phases_.interp);
    if (fast_path()) {
      if (lvl_ != SimdLevel::kScalar && pool_) {
        rt::simd::interp_add_rows_par(*pool_, fine, coarse, lvl_);
      } else if (lvl_ != SimdLevel::kScalar) {
        rt::simd::interp_add_rows(fine, coarse, lvl_);
      } else {
        interp_add_par(*pool_, fine, coarse);
      }
    } else {
      run_op(hier_, [](auto&& u, auto&& z) { interp_add(u, z); },
             GB{&fine, base_of(fine)}, GB{&coarse, base_of(coarse)});
    }
  }
  flops_ += 8 * interior(fine);
}

double MgSolver::norm_l2(Grid& g) {
  rt::obs::ScopedTimer timer(phases_.norm);
  return norm2u3(g).l2;
}

bool MgSolver::counters_available() const {
  return pc_ != nullptr && pc_->available();
}

void MgSolver::counters_begin() {
  if (pc_) pc_->start();
}

void MgSolver::counters_end() {
  if (!pc_) return;
  pc_->stop();
  const rt::obs::CounterReadings r = pc_->read();
  for (int i = 0; i < rt::obs::kNumCounters; ++i) {
    if (!r.counts[static_cast<std::size_t>(i)].valid) continue;
    auto& slot = hw_.counts[static_cast<std::size_t>(i)];
    slot.value += r.counts[static_cast<std::size_t>(i)].value;
    slot.valid = true;
  }
  hw_.time_enabled_ns += r.time_enabled_ns;
  hw_.time_running_ns += r.time_running_ns;
}

void MgSolver::setup() {
  for (int l = 1; l <= opts_.lt; ++l) {
    zero3_grid(u_[static_cast<std::size_t>(l - 1)]);
    zero3_grid(r_[static_cast<std::size_t>(l - 1)]);
  }
  zero3_grid(v_);
  Rng rng{opts_.seed};
  const long n = level_n(opts_.lt);
  for (int q = 0; q < opts_.charges; ++q) {
    const long i = 1 + rng.uniform(n - 2);
    const long j = 1 + rng.uniform(n - 2);
    const long k = 1 + rng.uniform(n - 2);
    v_(i, j, k) = (q < opts_.charges / 2) ? -1.0 : 1.0;
  }
  comm3_grid(v_);
}

void MgSolver::mg3p() {
  const int lt = opts_.lt, lb = opts_.lb;
  // Restrict the residual down the hierarchy.
  for (int k = lt; k > lb; --k) {
    rprj3_level(r_[static_cast<std::size_t>(k - 2)],
                r_[static_cast<std::size_t>(k - 1)]);
  }
  // Coarsest level: u = S r.
  Grid& ub = u_[static_cast<std::size_t>(lb - 1)];
  zero3_grid(ub);
  psinv_level(lb, ub, r_[static_cast<std::size_t>(lb - 1)]);
  // Back up: prolongate, correct the residual, smooth.
  for (int k = lb + 1; k < lt; ++k) {
    Grid& uk = u_[static_cast<std::size_t>(k - 1)];
    Grid& rk = r_[static_cast<std::size_t>(k - 1)];
    zero3_grid(uk);
    interp_level(uk, u_[static_cast<std::size_t>(k - 2)]);
    resid_level(k, rk, rk, uk, /*allow_tile=*/false);  // r_k -= A u_k
    psinv_level(k, uk, rk);
  }
  // Finest level: correction is *added* to the existing solution.
  Grid& ut = u_[static_cast<std::size_t>(lt - 1)];
  Grid& rt_ = r_[static_cast<std::size_t>(lt - 1)];
  interp_level(ut, u_[static_cast<std::size_t>(lt - 2)]);
  resid_level(lt, rt_, v_, ut, /*allow_tile=*/true);
  psinv_level(lt, ut, rt_);
}

double MgSolver::iterate() {
  counters_begin();
  Grid& r = r_[static_cast<std::size_t>(opts_.lt - 1)];
  resid_level(opts_.lt, r, v_, u_[static_cast<std::size_t>(opts_.lt - 1)],
              /*allow_tile=*/true);
  const double before = norm_l2(r);
  flops_ += 2 * interior(r);
  mg3p();
  counters_end();
  return before;
}

double MgSolver::residual_norm() {
  counters_begin();
  Grid& r = r_[static_cast<std::size_t>(opts_.lt - 1)];
  resid_level(opts_.lt, r, v_, u_[static_cast<std::size_t>(opts_.lt - 1)],
              /*allow_tile=*/true);
  flops_ += 2 * interior(r);
  const double norm = norm_l2(r);
  counters_end();
  return norm;
}

}  // namespace rt::multigrid
