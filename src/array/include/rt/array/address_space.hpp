#pragma once
// Deterministic placement of arrays in a simulated address space.
//
// The cache simulator reasons about absolute byte addresses; where each
// array starts matters for cross-interference (paper, Section 3.5).  This
// mimics Fortran COMMON-block layout: arrays are placed back to back, each
// aligned to a configurable boundary, starting at a fixed base.

#include <cstdint>
#include <string>
#include <vector>

namespace rt::array {

/// One placed array: [base_bytes, base_bytes + elems*elem_bytes).
struct Placement {
  std::string name;
  std::uint64_t base_bytes = 0;
  std::uint64_t elems = 0;
  std::uint32_t elem_bytes = 0;
};

class AddressSpace {
 public:
  /// @param base_bytes   address of the first array
  /// @param align_bytes  alignment of each array's base (power of two)
  explicit AddressSpace(std::uint64_t base_bytes = 0,
                        std::uint64_t align_bytes = 64);

  /// Reserve room for @p elems elements of @p elem_bytes each; returns the
  /// base byte address assigned to the array.
  std::uint64_t place(std::string name, std::uint64_t elems,
                      std::uint32_t elem_bytes = 8);

  /// Like place(), but advances the cursor (inserting inter-variable
  /// padding) until base % mod_bytes == off_bytes — the primitive behind
  /// the paper's Section 3.5 inter-variable padding, where each array's
  /// base must land in its own cache partition.
  std::uint64_t place_mod(std::string name, std::uint64_t elems,
                          std::uint32_t elem_bytes, std::uint64_t mod_bytes,
                          std::uint64_t off_bytes);

  const std::vector<Placement>& placements() const { return placements_; }
  std::uint64_t next_free() const { return next_; }

 private:
  std::uint64_t next_;
  std::uint64_t align_;
  std::vector<Placement> placements_;
};

}  // namespace rt::array
