#pragma once
// Column-major (Fortran-layout) 3D array with independently padded leading
// dimensions.  This is the storage substrate every kernel in this repo runs
// on: the I index is fastest-varying, exactly as in the paper's Fortran
// codes, so cache behaviour of C++ loops matches the paper's loop nests.
//
// Padding model (paper, Section 3.4): the *logical* extents are (n1, n2, n3)
// but the array may be allocated with leading dimensions (p1 >= n1,
// p2 >= n2).  Element (i, j, k) lives at linear index i + p1*(j + p2*k).
// Inter-array padding is handled by rt::array::AddressSpace.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "rt/array/aligned.hpp"

namespace rt::array {

/// Storage vector shared by Array3D/Array2D: 64-byte-aligned so element 0
/// sits on a cache-line boundary (see aligned.hpp).
template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

/// Logical + padded dimensions of a 3D array.  All values in elements.
struct Dims3 {
  long n1 = 0;  ///< logical extent of fastest (I) dimension
  long n2 = 0;  ///< logical extent of middle (J) dimension
  long n3 = 0;  ///< logical extent of slowest (K) dimension
  long p1 = 0;  ///< padded leading dimension, p1 >= n1
  long p2 = 0;  ///< padded second dimension, p2 >= n2

  /// Dims with no padding.
  static constexpr Dims3 unpadded(long n1, long n2, long n3) {
    return Dims3{n1, n2, n3, n1, n2};
  }
  /// Dims with padded leading dimensions (p1 x p2 x n3 allocation).
  static constexpr Dims3 padded(long n1, long n2, long n3, long p1, long p2) {
    return Dims3{n1, n2, n3, p1, p2};
  }

  constexpr long column_stride() const { return p1; }
  constexpr long plane_stride() const { return p1 * p2; }
  constexpr long alloc_elems() const { return p1 * p2 * n3; }
  /// alloc_elems() with the p1*p2*n3 product overflow-checked: nullopt when
  /// it does not fit a long (plane_stride()/alloc_elems() would silently
  /// wrap, which is signed-overflow UB *and* a wrong allocation size).
  /// Every allocation-size consumer goes through this.
  constexpr std::optional<long> checked_alloc_elems() const {
    long plane = 0, total = 0;
    if (__builtin_mul_overflow(p1, p2, &plane) ||
        __builtin_mul_overflow(plane, n3, &total)) {
      return std::nullopt;
    }
    return total;
  }
  constexpr bool valid() const {
    return n1 > 0 && n2 > 0 && n3 > 0 && p1 >= n1 && p2 >= n2;
  }
  friend constexpr bool operator==(const Dims3&, const Dims3&) = default;
};

/// Tag selecting the uninitialized Array3D constructor (first-touch NUMA).
struct uninit_t {
  explicit uninit_t() = default;
};
inline constexpr uninit_t uninit{};

/// Column-major 3D array.  operator()/load/store use 0-based indices.
/// The load/store member functions form the "accessor" concept shared with
/// rt::cachesim::TracedArray3D so stencil kernels can be instantiated either
/// for native execution (timing) or trace-driven cache simulation.
template <class T>
class Array3D {
 public:
  Array3D() = default;
  explicit Array3D(Dims3 d, T init = T{})
      : d_(d), data_(checked_count(d), init) {
    assert(d.valid());
  }
  Array3D(long n1, long n2, long n3, T init = T{})
      : Array3D(Dims3::unpadded(n1, n2, n3), init) {}
  /// Allocate without writing the storage: elements are default-initialized
  /// (indeterminate for arithmetic T — see AlignedAllocator::construct), so
  /// on a NUMA machine each page's placement is decided by the thread that
  /// first writes it.  The caller must initialize every element before any
  /// read; MgSolver/SorSolver zero the allocation plane-parallel on their
  /// pool right after construction.
  Array3D(Dims3 d, uninit_t) : d_(d), data_(checked_count(d)) {
    assert(d.valid());
  }
  /// Adopt recycled storage (rt::serve's buffer arena): reuse @p storage's
  /// allocation instead of paying a fresh one, resized to exactly
  /// alloc_elems() — a no-op when the arena bucket matches, which is what
  /// keying buckets by alloc_elems guarantees.  Element values are
  /// whatever the previous owner left (stale data, not zeroes); the caller
  /// must initialize the logical region before any read, same contract as
  /// the uninit_t constructor.
  Array3D(Dims3 d, AlignedVector<T>&& storage)
      : d_(d), data_(std::move(storage)) {
    assert(d.valid());
    data_.resize(checked_count(d));
  }
  /// Surrender the storage (the arena recycling counterpart of the adopt
  /// constructor).  The array is left empty/dimensionless.
  AlignedVector<T> release() {
    d_ = Dims3{};
    return std::move(data_);
  }

  const Dims3& dims() const { return d_; }
  long n1() const { return d_.n1; }
  long n2() const { return d_.n2; }
  long n3() const { return d_.n3; }

  /// Linear element index of (i, j, k) within the allocation.
  long index(long i, long j, long k) const {
    assert(i >= 0 && i < d_.p1);
    assert(j >= 0 && j < d_.p2);
    assert(k >= 0 && k < d_.n3);
    return i + d_.p1 * (j + d_.p2 * k);
  }

  T& operator()(long i, long j, long k) {
    return data_[static_cast<std::size_t>(index(i, j, k))];
  }
  const T& operator()(long i, long j, long k) const {
    return data_[static_cast<std::size_t>(index(i, j, k))];
  }

  // Accessor concept (see rt::kernels): every read is a load(), every write
  // a store().  For the native array these compile down to plain indexing.
  T load(long i, long j, long k) const { return (*this)(i, j, k); }
  void store(long i, long j, long k, T v) { (*this)(i, j, k) = v; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  static std::size_t checked_count(const Dims3& d) {
    const std::optional<long> n = d.checked_alloc_elems();
    if (!n || *n < 0) {
      throw std::length_error("Array3D: allocation size overflows long");
    }
    return static_cast<std::size_t>(*n);
  }

  Dims3 d_{};
  AlignedVector<T> data_;
};

/// Logical + padded dimensions of a 2D array (Dims3 analogue).
struct Dims2 {
  long n1 = 0;  ///< logical extent of the fastest (I) dimension
  long n2 = 0;  ///< logical extent of the second (J) dimension
  long p1 = 0;  ///< padded leading dimension, p1 >= n1

  static constexpr Dims2 unpadded(long n1, long n2) {
    return Dims2{n1, n2, n1};
  }
  static constexpr Dims2 padded(long n1, long n2, long p1) {
    return Dims2{n1, n2, p1};
  }
  constexpr long alloc_elems() const { return p1 * n2; }
  /// Overflow-checked alloc_elems() (see Dims3::checked_alloc_elems).
  constexpr std::optional<long> checked_alloc_elems() const {
    long total = 0;
    if (__builtin_mul_overflow(p1, n2, &total)) return std::nullopt;
    return total;
  }
  constexpr bool valid() const { return n1 > 0 && n2 > 0 && p1 >= n1; }
  friend constexpr bool operator==(const Dims2&, const Dims2&) = default;
};

/// Column-major 2D array (used by the 2D-vs-3D motivation study).
template <class T>
class Array2D {
 public:
  Array2D() = default;
  explicit Array2D(Dims2 d, T init = T{})
      : n1_(d.n1), n2_(d.n2), p1_(d.p1), data_(checked_count(d), init) {
    assert(d.valid());
  }
  Array2D(long n1, long n2, long p1 = -1)
      : Array2D(Dims2{n1, n2, p1 < 0 ? n1 : p1}) {}

  long n1() const { return n1_; }
  long n2() const { return n2_; }
  long p1() const { return p1_; }

  long index(long i, long j) const {
    assert(i >= 0 && i < p1_ && j >= 0 && j < n2_);
    return i + p1_ * j;
  }
  T& operator()(long i, long j) {
    return data_[static_cast<std::size_t>(index(i, j))];
  }
  const T& operator()(long i, long j) const {
    return data_[static_cast<std::size_t>(index(i, j))];
  }
  T load(long i, long j) const { return (*this)(i, j); }
  void store(long i, long j, T v) { (*this)(i, j) = v; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  static std::size_t checked_count(const Dims2& d) {
    const std::optional<long> n = d.checked_alloc_elems();
    if (!n || *n < 0) {
      throw std::length_error("Array2D: allocation size overflows long");
    }
    return static_cast<std::size_t>(*n);
  }

  long n1_ = 0, n2_ = 0, p1_ = 0;
  AlignedVector<T> data_;
};

}  // namespace rt::array
