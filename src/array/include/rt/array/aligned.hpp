#pragma once
// Minimal aligned allocator so Array3D/Array2D storage starts on a
// cache-line (and vector-register) boundary.  std::vector's default
// allocator only guarantees alignof(std::max_align_t) (16 on x86-64);
// the rt::simd row kernels want 64-byte alignment so a row that starts
// at a multiple of the vector width is genuinely aligned in memory, and
// so arrays never straddle a cache line at element 0 (the cache-line
// model rt::cachesim assumes when it places arrays at aligned bases).
//
// Alignment is a performance property only: kernels never require it
// (all vector paths use unaligned loads), so results are identical
// whatever the allocator returns.

#include <cstddef>
#include <limits>
#include <new>

#include "rt/guard/fault_injector.hpp"

namespace rt::array {

/// C++17 aligned-new backed allocator.  Drop-in for std::allocator<T>.
/// Failure surface: throws std::bad_alloc on byte-count overflow, real
/// exhaustion, or an armed rt::guard alloc fault — callers that want a
/// skipped-and-recorded row instead of a crash catch exactly that type.
template <class T, std::size_t Align = 64>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "Align must be a power of two >= alignof(T)");
  using value_type = T;
  static constexpr std::align_val_t kAlign{Align};

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    if (rt::guard::FaultInjector::armed(rt::guard::FaultKind::kAlloc) &&
        rt::guard::FaultInjector::instance().should_fail(
            rt::guard::FaultKind::kAlloc)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, kAlign);
  }

  /// Zero-argument construct performs *default*-initialization — a no-op
  /// for trivial T — instead of the value-initialization vector(n) would
  /// otherwise do.  This is the first-touch NUMA hook: Array3D's
  /// uninitialized constructor allocates through vector(n), no page is
  /// written during construction, and the thread that first writes each
  /// page (e.g. a pool worker zeroing its K planes) decides its placement.
  /// All other construction forms (vector(n, value), fill, copies) pass
  /// arguments and take the allocator_traits placement-new path unchanged.
  template <class U>
  void construct(U* p) noexcept(noexcept(::new (static_cast<void*>(p)) U)) {
    ::new (static_cast<void*>(p)) U;
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

}  // namespace rt::array
