#include "rt/array/address_space.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace rt::array {

namespace {
std::uint64_t align_up(std::uint64_t x, std::uint64_t a) {
  return (x + a - 1) / a * a;
}

/// elems * elem_bytes, overflow-checked: a wrapped byte count would pass
/// assert_disjoint (the range looks tiny) and silently alias every later
/// placement, so fail loudly in all build types.
std::uint64_t checked_bytes(std::uint64_t elems, std::uint32_t elem_bytes) {
  std::uint64_t bytes = 0;
  if (__builtin_mul_overflow(elems, std::uint64_t{elem_bytes}, &bytes)) {
    throw std::length_error("AddressSpace: placement byte size overflows");
  }
  return bytes;
}

/// The new range [base, base + bytes) must not intersect any placed array:
/// the cursor is monotonic so this can only fire on arithmetic overflow or
/// a future placement-policy bug, but a silently overlapping pair corrupts
/// every cross-interference measurement downstream, so check anyway.
void assert_disjoint(const std::vector<Placement>& placed, std::uint64_t base,
                     std::uint64_t bytes) {
#ifdef NDEBUG
  (void)placed;
  (void)base;
  (void)bytes;
#else
  for (const Placement& p : placed) {
    const std::uint64_t p_end = p.base_bytes + p.elems * p.elem_bytes;
    assert(base >= p_end || base + bytes <= p.base_bytes);
  }
  assert(base + bytes >= base);  // no wraparound
#endif
}
}  // namespace

AddressSpace::AddressSpace(std::uint64_t base_bytes, std::uint64_t align_bytes)
    : next_(base_bytes), align_(align_bytes) {
  assert(align_bytes > 0 && (align_bytes & (align_bytes - 1)) == 0);
}

std::uint64_t AddressSpace::place(std::string name, std::uint64_t elems,
                                  std::uint32_t elem_bytes) {
  next_ = align_up(next_, align_);
  const std::uint64_t base = next_;
  const std::uint64_t bytes = checked_bytes(elems, elem_bytes);
  assert_disjoint(placements_, base, bytes);
  placements_.push_back(Placement{std::move(name), base, elems, elem_bytes});
  next_ += bytes;
  return base;
}

std::uint64_t AddressSpace::place_mod(std::string name, std::uint64_t elems,
                                      std::uint32_t elem_bytes,
                                      std::uint64_t mod_bytes,
                                      std::uint64_t off_bytes) {
  assert(mod_bytes > 0 && off_bytes < mod_bytes);
  next_ = align_up(next_, align_);
  const std::uint64_t rem = next_ % mod_bytes;
  if (rem != off_bytes) {
    next_ += (off_bytes + mod_bytes - rem) % mod_bytes;
  }
  const std::uint64_t base = next_;
  const std::uint64_t bytes = checked_bytes(elems, elem_bytes);
  assert_disjoint(placements_, base, bytes);
  placements_.push_back(Placement{std::move(name), base, elems, elem_bytes});
  next_ += bytes;
  return base;
}

}  // namespace rt::array
