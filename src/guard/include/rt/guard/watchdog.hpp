#pragma once
// Per-run watchdog: run a task on a worker thread with a deadline, so a
// wedged kernel sweep produces a recorded "timeout" row instead of hanging
// scripts/reproduce.sh forever.
//
// Cancellation model: C++ threads cannot be killed safely, so on timeout the
// watchdog (1) cancels any rt::guard injected hangs — the only hang source
// tests create — and gives the task a short grace period to finish, then
// (2) abandons (detaches) it.  The contract that makes abandonment safe:
// the task closure must OWN everything it touches (by-value captures or
// shared_ptr-held heap state), never references into the caller's frame,
// because the caller returns while the abandoned task may still run.
// rt::bench::runner honours this by building the whole run context inside
// the closure.

#include <chrono>
#include <functional>

namespace rt::guard {

/// Outcome of a watchdog-supervised task.
struct WatchdogResult {
  bool completed = false;  ///< task finished before the deadline
  bool abandoned = false;  ///< timed out AND did not finish within the grace
                           ///< period; its thread was detached (leaked)
  /// Process-wide abandonment count *after* this run (see
  /// abandoned_thread_count()) — long-lived callers snapshot it into their
  /// own stats so leaked workers are observable, not silent.
  long abandoned_total = 0;
};

/// Run @p fn on a dedicated thread and wait at most @p timeout for it.
/// Exceptions escaping @p fn are rethrown here when the task completes in
/// time; an abandoned task's exception is swallowed with the thread.
WatchdogResult run_with_deadline(
    std::function<void()> fn, std::chrono::milliseconds timeout,
    std::chrono::milliseconds grace = std::chrono::milliseconds(500));

/// Monotonic count of worker threads ever abandoned (detached) by
/// run_with_deadline in this process.  A batch sweep tolerates the
/// occasional leak; a long-lived server must surface it — rt::serve
/// reports this in its stats block and its load-bench records.
long abandoned_thread_count();

}  // namespace rt::guard
