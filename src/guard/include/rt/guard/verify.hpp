#pragma once
// NaN/Inf output verification: stencil kernels propagate a single poisoned
// element across the whole grid within a few sweeps, so a cheap post-run
// finiteness sweep catches numerical blow-ups, uninitialised reads and
// (injected) input corruption that timing alone would happily average over.
//
// The sweeps are templates over the accessor concept (n1/n2/n3 + operator())
// shared with rt::cachesim::TracedArray3D, and over any executor with
// rt::par::ThreadPool's parallel_for shape, so this header pulls in neither
// library.  Only the *logical* n1 x n2 x n3 region is swept: padding slack
// is storage, not data, and is allowed to hold anything.

#include <atomic>
#include <cmath>
#include <string>

namespace rt::guard {

/// Bench-level verification policy (the --verify= flag).
enum class VerifyMode {
  kOff,   ///< no sweep
  kPost,  ///< serial sweep after the measured run
  kPara,  ///< sweep split over the run's thread pool (rt::par)
};

const char* verify_mode_name(VerifyMode m);

/// Parse "off" / "post" / "para" (anything else returns false).
bool parse_verify_mode(const std::string& s, VerifyMode* out);

/// Number of non-finite elements in the logical region of @p a.
template <class Arr>
long count_nonfinite(const Arr& a) {
  long bad = 0;
  for (long k = 0; k < a.n3(); ++k) {
    for (long j = 0; j < a.n2(); ++j) {
      for (long i = 0; i < a.n1(); ++i) {
        if (!std::isfinite(a(i, j, k))) ++bad;
      }
    }
  }
  return bad;
}

/// Same count, K planes distributed over @p pool (identical result: counting
/// commutes, and each plane is swept by exactly one worker).
template <class Pool, class Arr>
long count_nonfinite_par(Pool& pool, const Arr& a) {
  std::atomic<long> bad{0};
  pool.parallel_for(a.n3(), [&](long k) {
    long plane = 0;
    for (long j = 0; j < a.n2(); ++j) {
      for (long i = 0; i < a.n1(); ++i) {
        if (!std::isfinite(a(i, j, k))) ++plane;
      }
    }
    if (plane != 0) bad.fetch_add(plane, std::memory_order_relaxed);
  });
  return bad.load();
}

}  // namespace rt::guard
