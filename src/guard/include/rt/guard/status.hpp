#pragma once
// Typed outcomes for rt::guard validated entry points.  Every degraded path
// in the system — a planner falling back to untiled execution, an overflowed
// allocation size, a run that timed out under the watchdog — carries one of
// these codes instead of silently producing a default, so benches and tests
// can record *why* a configuration degraded (ISSUE: verifiable, not assumed).

#include <cassert>
#include <string>
#include <utility>

namespace rt::guard {

/// Outcome codes shared across the guard, core and bench layers.  kOk is the
/// only success value; names (status_name) are stable JSON/table tokens.
enum class Status : int {
  kOk = 0,
  kInvalidArgument,   ///< input fails validation (cs <= 0, dims below halo, …)
  kInfeasible,        ///< inputs valid but no solution exists (cache too small)
  kFellBackUntiled,   ///< tiling search found nothing; ran untiled instead
  kOverflow,          ///< a size computation would overflow its integer type
  kAllocFailed,       ///< allocation failed (real OOM or injected)
  kNonFinite,         ///< verify sweep found NaN/Inf in kernel output
  kTimeout,           ///< watchdog deadline expired before the run finished
  kCorrupt,           ///< persisted state failed to parse (truncated/garbage)
  kStale,             ///< persisted state is valid but no longer applicable
                      ///< (version or topology-fingerprint mismatch, age)
  kOverloaded,        ///< admission rejected: queue at capacity / draining
  kIoError,           ///< an I/O write failed (full disk, closed pipe/socket)
};

/// Stable lower-snake token ("ok", "fell_back_untiled", …) for tables/JSON.
const char* status_name(Status s);

/// Parse the token form back into a Status (anything else returns false).
bool parse_status(const std::string& s, Status* out);

/// Minimal expected-or-error result: either a T (status kOk) or a non-kOk
/// Status plus a human-readable detail line.  Deliberately tiny — no
/// exceptions in flight, no allocation beyond the detail string — so the
/// planner hot paths can return it by value.
template <class T>
class Expected {
 public:
  Expected(T v) : value_(std::move(v)), status_(Status::kOk) {}
  Expected(Status s, std::string detail = {})
      : status_(s), detail_(std::move(detail)) {
    assert(s != Status::kOk && "error Expected needs a non-ok status");
  }

  bool ok() const { return status_ == Status::kOk; }
  explicit operator bool() const { return ok(); }

  Status status() const { return status_; }
  const std::string& detail() const { return detail_; }

  const T& value() const {
    assert(ok());
    return value_;
  }
  T& value() {
    assert(ok());
    return value_;
  }
  const T& value_or(const T& fallback) const { return ok() ? value_ : fallback; }

 private:
  T value_{};
  Status status_;
  std::string detail_;
};

}  // namespace rt::guard
