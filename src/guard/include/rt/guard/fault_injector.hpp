#pragma once
// Deterministic fault injection: the test harness that turns "this path
// degrades gracefully" from an assumption into an exercised property.
// Production code places cheap hooks at its failure points (allocation,
// perf-counter open, thread spawn, input seeding, a hang point in the bench
// loop); tests — or the RT_GUARD_FAULTS environment variable — arm specific
// kinds, and the hook then forces the same failure the real world would
// produce (bad_alloc, a failed perf_event_open, a thread that never spawns,
// a NaN-poisoned grid, a wedged step).
//
// Design constraints, in order:
//  * zero cost when disarmed — the hook sites guard on a single relaxed
//    atomic bitmask load (armed()), so shipping the hooks in hot paths
//    (AlignedAllocator::allocate) costs one predictable branch;
//  * deterministic — faults fire by trigger count (fail the Nth+1 matching
//    site, for M occurrences), never by randomness or time;
//  * thread-safe — hooks may fire concurrently from rt::par workers.

#include <atomic>
#include <string>

namespace rt::guard {

/// The failure points production code exposes to injection.
enum class FaultKind : int {
  kAlloc = 0,     ///< AlignedAllocator::allocate throws std::bad_alloc
  kCounterOpen,   ///< rt::obs::PerfCounters opens as unavailable
  kThreadSpawn,   ///< rt::par::ThreadPool stops spawning workers (degrades)
  kNanInput,      ///< rt::bench runner seeds a NaN into the input grid
  kHang,          ///< hang_point() blocks until cancel_hangs()
  kSockDrop,      ///< rt::serve::write_frame tears the stream mid-frame
  kPartialWrite,  ///< rt::serve::write_frame leaves a short frame behind
  kFsyncFail,     ///< rt::tune::save_store's durability fsync fails
};
inline constexpr int kNumFaultKinds = 8;

/// Stable token ("alloc", "counter", "thread", "nan", "hang", "sockdrop",
/// "partialwrite", "fsyncfail").
const char* fault_kind_name(FaultKind k);
bool parse_fault_kind(const std::string& s, FaultKind* out);

class FaultInjector {
 public:
  /// Process-wide injector.  The first call parses RT_GUARD_FAULTS (see
  /// parse_spec for the grammar) so whole benches can be fault-seeded from
  /// the environment without recompiling.
  static FaultInjector& instance();

  /// Fast disarmed check for hook sites: a relaxed load of a bitmask.
  /// Hooks should test this before paying for should_fail()'s mutex.
  static bool armed(FaultKind k) {
    return (armed_mask_.load(std::memory_order_relaxed) >>
            static_cast<unsigned>(k)) & 1u;
  }

  /// Arm @p k: skip the first @p after triggers, then fire on the next
  /// @p count triggers (count < 0 = every trigger until disarmed).
  void arm(FaultKind k, long after = 0, long count = -1);
  void disarm(FaultKind k);
  void disarm_all();

  /// Hook entry point: counts one trigger of @p k and reports whether the
  /// fault fires this time.  Always false when disarmed (but still cheap —
  /// call armed() first on hot paths).
  bool should_fail(FaultKind k);

  /// Observability for tests: how many times a hook site asked / fired.
  long triggers(FaultKind k) const;
  long fired(FaultKind k) const;

  /// Cooperative hang site (kHang): when armed and firing, blocks the
  /// calling thread until cancel_hangs() or disarm(kHang).  The watchdog
  /// cancels hangs on timeout so injected hangs never leak threads.
  void hang_point();
  void cancel_hangs();

  /// Parse an injection spec: comma-separated `kind[:after[:count]]`, e.g.
  ///   "alloc"            fail every allocation
  ///   "alloc:2"          fail from the 3rd allocation on
  ///   "counter:0:1,hang" fail the first counter open, and hang once armed
  /// Returns false (and arms nothing from the bad clause) on a malformed
  /// spec; @p err receives the offending clause.
  bool parse_spec(const std::string& spec, std::string* err = nullptr);

 private:
  FaultInjector();

  struct Slot {
    bool armed = false;
    long after = 0;
    long count = -1;
    long triggers = 0;
    long fired = 0;
  };

  // One word the hook sites can poll without taking the mutex.
  inline static std::atomic<unsigned> armed_mask_{0};

  struct Impl;
  Impl* impl_;  // never destroyed (process-lifetime singleton)
};

}  // namespace rt::guard
