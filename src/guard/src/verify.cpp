#include "rt/guard/verify.hpp"

namespace rt::guard {

const char* verify_mode_name(VerifyMode m) {
  switch (m) {
    case VerifyMode::kOff: return "off";
    case VerifyMode::kPost: return "post";
    case VerifyMode::kPara: return "para";
  }
  return "?";
}

bool parse_verify_mode(const std::string& s, VerifyMode* out) {
  if (s == "off") {
    *out = VerifyMode::kOff;
  } else if (s == "post") {
    *out = VerifyMode::kPost;
  } else if (s == "para") {
    *out = VerifyMode::kPara;
  } else {
    return false;
  }
  return true;
}

}  // namespace rt::guard
