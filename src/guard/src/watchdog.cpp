#include "rt/guard/watchdog.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "rt/guard/fault_injector.hpp"

namespace rt::guard {

namespace {

struct TaskState {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
};

std::atomic<long> g_abandoned{0};

}  // namespace

long abandoned_thread_count() {
  return g_abandoned.load(std::memory_order_relaxed);
}

WatchdogResult run_with_deadline(std::function<void()> fn,
                                 std::chrono::milliseconds timeout,
                                 std::chrono::milliseconds grace) {
  auto state = std::make_shared<TaskState>();
  std::thread worker([state, fn = std::move(fn)] {
    std::exception_ptr err;
    try {
      fn();
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(state->m);
    state->done = true;
    state->error = err;
    state->cv.notify_all();
  });

  WatchdogResult res;
  std::unique_lock<std::mutex> lk(state->m);
  if (state->cv.wait_for(lk, timeout, [&] { return state->done; })) {
    res.completed = true;
  } else {
    // Deadline expired.  Injected hangs are cooperative: cancelling them
    // lets a fault-injection test's "hung" task finish inside the grace
    // period, so the worker is joined and nothing leaks.  A genuinely
    // wedged task is abandoned instead — the leak is the price of not
    // blocking the whole sweep, and the caller records it.
    lk.unlock();
    FaultInjector::instance().cancel_hangs();
    lk.lock();
    if (!state->cv.wait_for(lk, grace, [&] { return state->done; })) {
      res.abandoned = true;
    }
  }
  lk.unlock();

  if (res.abandoned) {
    worker.detach();
    res.abandoned_total = g_abandoned.fetch_add(1, std::memory_order_relaxed) + 1;
    return res;
  }
  worker.join();
  res.abandoned_total = g_abandoned.load(std::memory_order_relaxed);
  if (res.completed && state->error) std::rethrow_exception(state->error);
  return res;
}

}  // namespace rt::guard
