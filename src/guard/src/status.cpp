#include "rt/guard/status.hpp"

namespace rt::guard {

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kInvalidArgument: return "invalid_argument";
    case Status::kInfeasible: return "infeasible";
    case Status::kFellBackUntiled: return "fell_back_untiled";
    case Status::kOverflow: return "overflow";
    case Status::kAllocFailed: return "alloc_failed";
    case Status::kNonFinite: return "nonfinite";
    case Status::kTimeout: return "timeout";
    case Status::kCorrupt: return "corrupt";
    case Status::kStale: return "stale";
    case Status::kOverloaded: return "overloaded";
    case Status::kIoError: return "io_error";
  }
  return "?";
}

bool parse_status(const std::string& s, Status* out) {
  for (Status st : {Status::kOk, Status::kInvalidArgument, Status::kInfeasible,
                    Status::kFellBackUntiled, Status::kOverflow,
                    Status::kAllocFailed, Status::kNonFinite,
                    Status::kTimeout, Status::kCorrupt, Status::kStale,
                    Status::kOverloaded, Status::kIoError}) {
    if (s == status_name(st)) {
      *out = st;
      return true;
    }
  }
  return false;
}

}  // namespace rt::guard
