#include "rt/guard/fault_injector.hpp"

#include <array>
#include <condition_variable>
#include <cstdlib>
#include <mutex>

namespace rt::guard {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kAlloc: return "alloc";
    case FaultKind::kCounterOpen: return "counter";
    case FaultKind::kThreadSpawn: return "thread";
    case FaultKind::kNanInput: return "nan";
    case FaultKind::kHang: return "hang";
    case FaultKind::kSockDrop: return "sockdrop";
    case FaultKind::kPartialWrite: return "partialwrite";
    case FaultKind::kFsyncFail: return "fsyncfail";
  }
  return "?";
}

bool parse_fault_kind(const std::string& s, FaultKind* out) {
  for (int i = 0; i < kNumFaultKinds; ++i) {
    const auto k = static_cast<FaultKind>(i);
    if (s == fault_kind_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

struct FaultInjector::Impl {
  mutable std::mutex m;
  std::condition_variable cv_hang;
  bool cancel_hangs = false;
  std::array<Slot, kNumFaultKinds> slots;
};

FaultInjector::FaultInjector() : impl_(new Impl()) {
  if (const char* env = std::getenv("RT_GUARD_FAULTS")) {
    // Environment seeding is best-effort: a malformed clause arms nothing
    // (parse_spec reports it, but there is no caller to tell at static
    // init, and crashing a bench over a typo'd env var defeats the point).
    parse_spec(env);
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector* g = new FaultInjector();
  return *g;
}

namespace {
// Hook sites poll the static armed() bitmask and only touch the singleton
// once a fault is armed — so RT_GUARD_FAULTS must be parsed (by the first
// instance() call) before any hook runs, not lazily after.  Force it at
// static initialisation.
[[maybe_unused]] FaultInjector& g_env_seed = FaultInjector::instance();
}  // namespace

void FaultInjector::arm(FaultKind k, long after, long count) {
  std::lock_guard<std::mutex> lk(impl_->m);
  Slot& s = impl_->slots[static_cast<std::size_t>(k)];
  s.armed = true;
  s.after = after;
  s.count = count;
  s.triggers = 0;
  s.fired = 0;
  if (k == FaultKind::kHang) impl_->cancel_hangs = false;
  armed_mask_.fetch_or(1u << static_cast<unsigned>(k),
                       std::memory_order_relaxed);
}

void FaultInjector::disarm(FaultKind k) {
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->slots[static_cast<std::size_t>(k)].armed = false;
    armed_mask_.fetch_and(~(1u << static_cast<unsigned>(k)),
                          std::memory_order_relaxed);
  }
  // A disarmed hang releases anyone still blocked at a hang point.
  if (k == FaultKind::kHang) impl_->cv_hang.notify_all();
}

void FaultInjector::disarm_all() {
  for (int i = 0; i < kNumFaultKinds; ++i) disarm(static_cast<FaultKind>(i));
}

bool FaultInjector::should_fail(FaultKind k) {
  std::lock_guard<std::mutex> lk(impl_->m);
  Slot& s = impl_->slots[static_cast<std::size_t>(k)];
  if (!s.armed) return false;
  const long t = s.triggers++;
  if (t < s.after) return false;
  if (s.count >= 0 && s.fired >= s.count) return false;
  ++s.fired;
  return true;
}

long FaultInjector::triggers(FaultKind k) const {
  std::lock_guard<std::mutex> lk(impl_->m);
  return impl_->slots[static_cast<std::size_t>(k)].triggers;
}

long FaultInjector::fired(FaultKind k) const {
  std::lock_guard<std::mutex> lk(impl_->m);
  return impl_->slots[static_cast<std::size_t>(k)].fired;
}

void FaultInjector::hang_point() {
  if (!armed(FaultKind::kHang)) return;
  if (!should_fail(FaultKind::kHang)) return;
  std::unique_lock<std::mutex> lk(impl_->m);
  impl_->cv_hang.wait(lk, [this] {
    return impl_->cancel_hangs ||
           !impl_->slots[static_cast<std::size_t>(FaultKind::kHang)].armed;
  });
}

void FaultInjector::cancel_hangs() {
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->cancel_hangs = true;
    impl_->slots[static_cast<std::size_t>(FaultKind::kHang)].armed = false;
    armed_mask_.fetch_and(~(1u << static_cast<unsigned>(FaultKind::kHang)),
                          std::memory_order_relaxed);
  }
  impl_->cv_hang.notify_all();
}

bool FaultInjector::parse_spec(const std::string& spec, std::string* err) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;

    // kind[:after[:count]] with strict numeric fields.
    std::string kind = clause;
    long after = 0, count = -1;
    const std::size_t c1 = clause.find(':');
    if (c1 != std::string::npos) {
      kind = clause.substr(0, c1);
      const std::size_t c2 = clause.find(':', c1 + 1);
      const std::string a_str = clause.substr(
          c1 + 1, (c2 == std::string::npos ? clause.size() : c2) - c1 - 1);
      const std::string n_str =
          c2 == std::string::npos ? "" : clause.substr(c2 + 1);
      const auto parse_long = [](const std::string& s, long* out) {
        if (s.empty()) return false;
        char* e = nullptr;
        const long v = std::strtol(s.c_str(), &e, 10);
        if (e != s.c_str() + s.size()) return false;
        *out = v;
        return true;
      };
      if (!parse_long(a_str, &after) ||
          (c2 != std::string::npos && !parse_long(n_str, &count))) {
        if (err) *err = clause;
        return false;
      }
    }
    FaultKind k;
    if (!parse_fault_kind(kind, &k)) {
      if (err) *err = clause;
      return false;
    }
    arm(k, after, count);
  }
  return true;
}

}  // namespace rt::guard
