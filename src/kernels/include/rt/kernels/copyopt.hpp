#pragma once
// Copy optimization (paper Section 3.1): tiled 3D Jacobi that copies each
// array tile into a small contiguous buffer before computing from it.
// For linear-algebra codes this amortises (O(N^2) copies vs O(N^3) work);
// for stencils the copies are a large constant fraction of all accesses —
// this implementation exists so the benchmarks can *measure* that claim
// rather than assert it.
//
// The buffer is a rolling 3-plane window of B's (TI+2) x (TJ+2) halo
// region; plane p of B lives in buffer slot p mod 3.

#include <algorithm>

#include "rt/core/cost.hpp"

namespace rt::kernels {

/// Tiled Jacobi with copy-in of each array tile.  @p buf must be an
/// accessor over a (t.ti + 2) x (t.tj + 2) x 3 array.
template <class Dst, class Src, class Buf>
void jacobi3d_tiled_copy(Dst& a, Src& b, Buf& buf, double c,
                         rt::core::IterTile t) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long jj = 1; jj < n2 - 1; jj += t.tj) {
    const long jhi = std::min(jj + t.tj, n2 - 1);
    for (long ii = 1; ii < n1 - 1; ii += t.ti) {
      const long ihi = std::min(ii + t.ti, n1 - 1);
      // Copy one halo'd plane of B into its rolling buffer slot.
      const auto copy_plane = [&](long k) {
        const long slot = k % 3;
        for (long j = jj - 1; j <= std::min(jhi, n2 - 1); ++j) {
          for (long i = ii - 1; i <= std::min(ihi, n1 - 1); ++i) {
            buf.store(i - (ii - 1), j - (jj - 1), slot, b.load(i, j, k));
          }
        }
      };
      copy_plane(0);
      copy_plane(1);
      for (long k = 1; k < n3 - 1; ++k) {
        copy_plane(k + 1);
        const long s0 = (k - 1) % 3, s1 = k % 3, s2 = (k + 1) % 3;
        for (long j = jj; j < jhi; ++j) {
          const long bj = j - (jj - 1);
          for (long i = ii; i < ihi; ++i) {
            const long bi = i - (ii - 1);
            a.store(i, j, k,
                    c * (buf.load(bi - 1, bj, s1) + buf.load(bi + 1, bj, s1) +
                         buf.load(bi, bj - 1, s1) + buf.load(bi, bj + 1, s1) +
                         buf.load(bi, bj, s0) + buf.load(bi, bj, s2)));
          }
        }
      }
    }
  }
}

}  // namespace rt::kernels
