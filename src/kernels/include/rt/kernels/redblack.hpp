#pragma once
// Red-black SOR in 3D (paper Fig. 12): naive two-pass version, the fused
// version that updates black points in plane K as soon as red points in
// plane K+1 are done, and the tiled fused version with the skewed J/I
// windows from the paper.
//
// Colors: "red" = (i+j+k) even, "black" = odd (0-based; label choice only
// affects naming, not behaviour).  All three variants compute bitwise
// identical results — the tests assert it.

#include <algorithm>

#include "rt/core/cost.hpp"

namespace rt::kernels {

using rt::core::IterTile;

namespace detail {
/// First i >= lo with (i + j + k) % 2 == parity.
inline long first_with_parity(long lo, long j, long k, long parity) {
  return lo + (((lo + j + k) ^ parity) & 1);
}
}  // namespace detail

/// One red-black update of a single point.
template <class Acc>
inline void rb_update(Acc& a, long i, long j, long k, double c1, double c2) {
  a.store(i, j, k,
          c1 * a.load(i, j, k) +
              c2 * (a.load(i - 1, j, k) + a.load(i, j - 1, k) +
                    a.load(i + 1, j, k) + a.load(i, j + 1, k) +
                    a.load(i, j, k - 1) + a.load(i, j, k + 1)));
}

/// Naive version: full sweep over red points, then full sweep over black.
template <class Acc>
void redblack_naive(Acc& a, double c1, double c2) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long parity = 0; parity < 2; ++parity) {
    for (long k = 1; k < n3 - 1; ++k) {
      for (long j = 1; j < n2 - 1; ++j) {
        for (long i = detail::first_with_parity(1, j, k, parity); i < n1 - 1;
             i += 2) {
          rb_update(a, i, j, k, c1, c2);
        }
      }
    }
  }
}

/// Fused version (paper Fig. 12 middle): per outer step kk, update red
/// points of plane kk+1 then black points of plane kk, so only three array
/// planes need stay in cache.
template <class Acc>
void redblack_fused(Acc& a, double c1, double c2) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long kk = 0; kk <= n3 - 2; ++kk) {
    for (long k = kk + 1; k >= kk; --k) {
      if (k < 1 || k > n3 - 2) continue;
      const long parity = (k == kk + 1) ? 0 : 1;  // red first, then black
      for (long j = 1; j < n2 - 1; ++j) {
        for (long i = detail::first_with_parity(1, j, k, parity); i < n1 - 1;
             i += 2) {
          rb_update(a, i, j, k, c1, c2);
        }
      }
    }
  }
}

/// Tiled fused version (paper Fig. 12 bottom).  The J/I windows are skewed
/// by (k - kk) so a tile's red plane leads its black plane by one K step;
/// the array tile then spans four planes (ATD = 4).
template <class Acc>
void redblack_tiled(Acc& a, double c1, double c2, IterTile t) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long jj = 0; jj <= n2 - 2; jj += t.tj) {
    for (long ii = 0; ii <= n1 - 2; ii += t.ti) {
      for (long kk = 0; kk <= n3 - 2; ++kk) {
        for (long k = kk + 1; k >= kk; --k) {
          if (k < 1 || k > n3 - 2) continue;
          const long d = k - kk;  // skew: 0 or 1
          const long parity = (d == 1) ? 0 : 1;
          const long jlo = std::max(jj + d, 1L);
          const long jhi = std::min(jj + d + t.tj - 1, n2 - 2);
          const long ihi_tile = ii + d + t.ti - 1;
          for (long j = jlo; j <= jhi; ++j) {
            long i = detail::first_with_parity(ii + d, j, k, parity);
            if (i < 1) i += 2;  // paper's "if (IStart.eq.1) IStart=3"
            const long ihi = std::min(ihi_tile, n1 - 2);
            for (; i <= ihi; i += 2) {
              rb_update(a, i, j, k, c1, c2);
            }
          }
        }
      }
    }
  }
}

// --- Variants with a per-point constant term (SOR with a right-hand
// side: u <- c1 u + c2 sum(neighbours) + rhs).  Same schedules as above;
// rhs == 0 reduces exactly to the plain kernels. ---

template <class Acc, class Rhs>
inline void rb_update_rhs(Acc& a, Rhs& r, long i, long j, long k, double c1,
                          double c2) {
  a.store(i, j, k,
          c1 * a.load(i, j, k) +
              c2 * (a.load(i - 1, j, k) + a.load(i, j - 1, k) +
                    a.load(i + 1, j, k) + a.load(i, j + 1, k) +
                    a.load(i, j, k - 1) + a.load(i, j, k + 1)) +
              r.load(i, j, k));
}

template <class Acc, class Rhs>
void redblack_naive_rhs(Acc& a, Rhs& r, double c1, double c2) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long parity = 0; parity < 2; ++parity) {
    for (long k = 1; k < n3 - 1; ++k) {
      for (long j = 1; j < n2 - 1; ++j) {
        for (long i = detail::first_with_parity(1, j, k, parity); i < n1 - 1;
             i += 2) {
          rb_update_rhs(a, r, i, j, k, c1, c2);
        }
      }
    }
  }
}

template <class Acc, class Rhs>
void redblack_tiled_rhs(Acc& a, Rhs& r, double c1, double c2, IterTile t) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long jj = 0; jj <= n2 - 2; jj += t.tj) {
    for (long ii = 0; ii <= n1 - 2; ii += t.ti) {
      for (long kk = 0; kk <= n3 - 2; ++kk) {
        for (long k = kk + 1; k >= kk; --k) {
          if (k < 1 || k > n3 - 2) continue;
          const long d = k - kk;
          const long parity = (d == 1) ? 0 : 1;
          const long jlo = std::max(jj + d, 1L);
          const long jhi = std::min(jj + d + t.tj - 1, n2 - 2);
          const long ihi_tile = ii + d + t.ti - 1;
          for (long j = jlo; j <= jhi; ++j) {
            long i = detail::first_with_parity(ii + d, j, k, parity);
            if (i < 1) i += 2;
            const long ihi = std::min(ihi_tile, n1 - 2);
            for (; i <= ihi; i += 2) {
              rb_update_rhs(a, r, i, j, k, c1, c2);
            }
          }
        }
      }
    }
  }
}

}  // namespace rt::kernels
