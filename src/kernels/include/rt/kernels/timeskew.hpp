#pragma once
// Time-skewed 3D Jacobi (the paper's future-work direction, Section 2.1:
// Song & Li / Wonnacott exploit reuse across *time-step* iterations, which
// plain JI-tiling cannot).  This is the "simplified stencil code" of
// Fig. 5 (top): a time loop around a single sweep with ping-pong arrays.
//
// Blocking scheme: plane p's step-t update is executed by the K-block
// containing p + t (slope-1 skew).  Within a block, steps run in order;
// blocks run in ascending K.  Correctness relies on double buffering:
//   * plane k's step-t update reads step-(t-1) values of planes k-1..k+1;
//   * plane k+1 step t-1 is computed earlier in the same block;
//   * plane k-1 step t-1 is computed by an earlier block (or this one) and
//     its next overwrite (step t+1, same parity) happens later in this
//     block — so the read always sees the right version.
//
// After `tsteps` steps the ping-pong arrays hold exactly the same values
// as `tsteps` alternating calls to jacobi3d (tests assert bitwise
// equality).  Reuse: each block keeps ~BK planes live across all tsteps
// sweeps, so cache traffic drops by ~tsteps when BK planes fit in cache.

#include <algorithm>

namespace rt::kernels {

/// @param a,b  ping-pong arrays; `b` holds the initial state (step 0)
/// @param tsteps  number of sweeps (<= 0 is a no-op); final state is in `a`
///                if tsteps is odd, else in `b`... concretely: step s
///                writes (s even ? a : b).
/// @param bk  K-block size (planes per block); values < 1 are clamped to 1
///            (bk <= 0 would otherwise never advance the block loop)
template <class Arr>
void jacobi3d_timeskew(Arr& a, Arr& b, double c, int tsteps, long bk) {
  if (tsteps <= 0) return;
  bk = std::max(bk, 1L);
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  const auto plane = [&](Arr& dst, Arr& src, long k) {
    for (long j = 1; j < n2 - 1; ++j) {
      for (long i = 1; i < n1 - 1; ++i) {
        dst.store(i, j, k,
                  c * (src.load(i - 1, j, k) + src.load(i + 1, j, k) +
                       src.load(i, j - 1, k) + src.load(i, j + 1, k) +
                       src.load(i, j, k - 1) + src.load(i, j, k + 1)));
      }
    }
  };
  for (long kb = 1; kb < (n3 - 2) + tsteps; kb += bk) {
    for (int t = 0; t < tsteps; ++t) {
      const long lo = std::max(1L, kb - t);
      const long hi = std::min(n3 - 2, kb + bk - 1 - t);
      Arr& dst = (t % 2 == 0) ? a : b;
      Arr& src = (t % 2 == 0) ? b : a;
      for (long k = lo; k <= hi; ++k) plane(dst, src, k);
    }
  }
}

/// Reference: tsteps alternating whole-array sweeps (what time skewing
/// must reproduce bitwise).
template <class Arr>
void jacobi3d_pingpong(Arr& a, Arr& b, double c, int tsteps) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (int t = 0; t < tsteps; ++t) {
    Arr& dst = (t % 2 == 0) ? a : b;
    Arr& src = (t % 2 == 0) ? b : a;
    for (long k = 1; k < n3 - 1; ++k) {
      for (long j = 1; j < n2 - 1; ++j) {
        for (long i = 1; i < n1 - 1; ++i) {
          dst.store(i, j, k,
                    c * (src.load(i - 1, j, k) + src.load(i + 1, j, k) +
                         src.load(i, j - 1, k) + src.load(i, j + 1, k) +
                         src.load(i, j, k - 1) + src.load(i, j, k + 1)));
        }
      }
    }
  }
}

}  // namespace rt::kernels
