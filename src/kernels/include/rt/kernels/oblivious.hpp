#pragma once
// Cache-oblivious variants of the stencil kernels (PCOT-style recursive
// spatial decomposition; cf. the inncabs cache-oblivious Jacobi).  The
// (J, I) interior is bisected — always the dimension furthest from its
// base extent — until blocks reach the plan's base tile, then the block
// runs as a plain K/J/I nest.  No cache parameter is consulted anywhere:
// every level of the recursion fits *some* cache level, which is the
// whole point.
//
// Bit-identical guarantee: within one sweep (one parity, for red-black)
// every (i, j, k) update is independent of the others, so visiting the
// blocks in recursion order computes exactly what the flat nest computes.

#include <utility>

#include "rt/core/cost.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/kernels/resid.hpp"

namespace rt::kernels {

/// Recursive driver over the half-open region [ilo, ihi) x [jlo, jhi):
/// bisect whichever dimension overshoots its base extent by the larger
/// factor, stop when both fit, and hand the block to @p body as
/// body(ilo, ihi, jlo, jhi).  Depth is O(log(N / base)).
template <class Body>
void co_over(long ilo, long ihi, long jlo, long jhi, long base_ti,
             long base_tj, Body&& body) {
  const long ni = ihi - ilo;
  const long nj = jhi - jlo;
  if (ni <= 0 || nj <= 0) return;
  if (base_ti < 1) base_ti = 1;
  if (base_tj < 1) base_tj = 1;
  if (ni <= base_ti && nj <= base_tj) {
    body(ilo, ihi, jlo, jhi);
    return;
  }
  // ni/base_ti >= nj/base_tj, cross-multiplied to stay in integers.
  if (ni * base_tj >= nj * base_ti) {
    const long mid = ilo + ni / 2;
    co_over(ilo, mid, jlo, jhi, base_ti, base_tj, body);
    co_over(mid, ihi, jlo, jhi, base_ti, base_tj, std::forward<Body>(body));
  } else {
    const long mid = jlo + nj / 2;
    co_over(ilo, ihi, jlo, mid, base_ti, base_tj, body);
    co_over(ilo, ihi, mid, jhi, base_ti, base_tj, std::forward<Body>(body));
  }
}

/// Cache-oblivious 3D Jacobi: recursive (J, I) decomposition down to
/// @p base, K untiled inside each block (matching jacobi3d_tiled's nest).
template <class Dst, class Src>
void jacobi3d_oblivious(Dst& a, Src& b, double c, IterTile base) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  co_over(1, n1 - 1, 1, n2 - 1, base.ti, base.tj,
          [&](long ilo, long ihi, long jlo, long jhi) {
            for (long k = 1; k < n3 - 1; ++k) {
              for (long j = jlo; j < jhi; ++j) {
                for (long i = ilo; i < ihi; ++i) {
                  a.store(i, j, k,
                          c * (b.load(i - 1, j, k) + b.load(i + 1, j, k) +
                               b.load(i, j - 1, k) + b.load(i, j + 1, k) +
                               b.load(i, j, k - 1) + b.load(i, j, k + 1)));
                }
              }
            }
          });
}

/// Cache-oblivious interior copy-back (pairs with jacobi3d_oblivious in
/// the realistic two-nest pattern).
template <class Dst, class Src>
void copy_interior_oblivious(Dst& dst, Src& src, IterTile base) {
  const long n1 = dst.n1(), n2 = dst.n2(), n3 = dst.n3();
  co_over(1, n1 - 1, 1, n2 - 1, base.ti, base.tj,
          [&](long ilo, long ihi, long jlo, long jhi) {
            for (long k = 1; k < n3 - 1; ++k) {
              for (long j = jlo; j < jhi; ++j) {
                for (long i = ilo; i < ihi; ++i) {
                  dst.store(i, j, k, src.load(i, j, k));
                }
              }
            }
          });
}

/// Cache-oblivious RESID: recursive (I2, I1) decomposition, I3 untiled
/// inside each block (matching resid_tiled's nest).
template <class R, class V, class U>
void resid_oblivious(R& r, V& v, U& u, const ResidCoeffs& a, IterTile base) {
  const long n1 = r.n1(), n2 = r.n2(), n3 = r.n3();
  co_over(1, n1 - 1, 1, n2 - 1, base.ti, base.tj,
          [&](long i1lo, long i1hi, long i2lo, long i2hi) {
            for (long i3 = 1; i3 < n3 - 1; ++i3) {
              for (long i2 = i2lo; i2 < i2hi; ++i2) {
                for (long i1 = i1lo; i1 < i1hi; ++i1) {
                  resid_point(r, v, u, a, i1, i2, i3);
                }
              }
            }
          });
}

/// Cache-oblivious red-black SOR: color by color (all red blocks before
/// any black block, like redblack_naive), each color's (J, I) region
/// decomposed recursively.  Same-color points never neighbour each other,
/// so block order within a color cannot change a single update.
template <class Acc>
void redblack_oblivious(Acc& a, double c1, double c2, IterTile base) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long parity = 0; parity < 2; ++parity) {
    co_over(1, n1 - 1, 1, n2 - 1, base.ti, base.tj,
            [&](long ilo, long ihi, long jlo, long jhi) {
              for (long k = 1; k < n3 - 1; ++k) {
                for (long j = jlo; j < jhi; ++j) {
                  for (long i = detail::first_with_parity(ilo, j, k, parity);
                       i < ihi; i += 2) {
                    rb_update(a, i, j, k, c1, c2);
                  }
                }
              }
            });
  }
}

}  // namespace rt::kernels
