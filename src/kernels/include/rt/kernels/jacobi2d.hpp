#pragma once
// 2D Jacobi iteration (paper Fig. 1), used by the motivation study: a 16K
// L1 keeps the three live columns resident up to N = 1024 doubles, which is
// why 2D stencils rarely need tiling (Section 1).

namespace rt::kernels {

/// A(i,j) = c * sum of B's four neighbours; 0-based, interior 1..n-2.
template <class Dst, class Src>
void jacobi2d(Dst& a, Src& b, double c) {
  const long n1 = a.n1(), n2 = a.n2();
  for (long j = 1; j < n2 - 1; ++j) {
    for (long i = 1; i < n1 - 1; ++i) {
      a.store(i, j,
              c * (b.load(i - 1, j) + b.load(i + 1, j) + b.load(i, j - 1) +
                   b.load(i, j + 1)));
    }
  }
}

template <class Dst, class Src>
void copy_interior2d(Dst& dst, Src& src) {
  const long n1 = dst.n1(), n2 = dst.n2();
  for (long j = 1; j < n2 - 1; ++j) {
    for (long i = 1; i < n1 - 1; ++i) {
      dst.store(i, j, src.load(i, j));
    }
  }
}

}  // namespace rt::kernels
