#pragma once
// Registry describing the three paper kernels: stencil spec for the tiling
// algorithms plus flop/access counts per interior point (used for MFlops
// and for cross-checking simulated access counts).

#include <cstdint>
#include <string_view>
#include <vector>

#include "rt/core/stencil_spec.hpp"

namespace rt::kernels {

/// kJacobi / kRedBlack / kResid are the paper's three evaluation kernels;
/// kPsinv is the MGRID smoother, added per Section 4.6's remark that
/// "additional improvements [are expected] from tiling the remaining
/// subroutines in the application".
enum class KernelId { kJacobi, kRedBlack, kResid, kPsinv };

struct KernelInfo {
  KernelId id;
  std::string_view name;
  rt::core::StencilSpec spec;
  /// Memory accesses per interior point per sweep of the *stencil* nest(s)
  /// (excluding any copy-back loop).
  std::uint64_t accesses_per_point;
  /// Floating-point operations per interior point per sweep.
  std::uint64_t flops_per_point;
  /// Number of 3D arrays the kernel touches.
  int num_arrays;
};

const KernelInfo& kernel_info(KernelId id);
const std::vector<KernelId>& all_kernels();

}  // namespace rt::kernels
