#pragma once
// RESID (paper Fig. 13): the residual computation from the SPEC/NAS MGRID
// multigrid benchmark — a full 27-point stencil, r = v - A u, with
// coefficients grouped by neighbour class (centre / face / edge / corner).
// Original and tiled (T2 x T1 on the inner two loops) forms.

#include <algorithm>
#include <array>

#include "rt/core/cost.hpp"

namespace rt::kernels {

using rt::core::IterTile;

/// Stencil coefficients: a[0] centre, a[1] faces, a[2] edges, a[3] corners.
using ResidCoeffs = std::array<double, 4>;

/// NAS MG "a" coefficient vector (class A/B problems): (-8/3, 0, 1/6, 1/12).
inline ResidCoeffs nas_mg_a() {
  return ResidCoeffs{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0};
}

/// One 27-point residual at (i1, i2, i3).
template <class R, class V, class U>
inline void resid_point(R& r, V& v, U& u, const ResidCoeffs& a, long i1,
                        long i2, long i3) {
  const double s1 = u.load(i1 - 1, i2, i3) + u.load(i1 + 1, i2, i3) +
                    u.load(i1, i2 - 1, i3) + u.load(i1, i2 + 1, i3) +
                    u.load(i1, i2, i3 - 1) + u.load(i1, i2, i3 + 1);
  const double s2 =
      u.load(i1 - 1, i2 - 1, i3) + u.load(i1 + 1, i2 - 1, i3) +
      u.load(i1 - 1, i2 + 1, i3) + u.load(i1 + 1, i2 + 1, i3) +
      u.load(i1, i2 - 1, i3 - 1) + u.load(i1, i2 + 1, i3 - 1) +
      u.load(i1, i2 - 1, i3 + 1) + u.load(i1, i2 + 1, i3 + 1) +
      u.load(i1 - 1, i2, i3 - 1) + u.load(i1 - 1, i2, i3 + 1) +
      u.load(i1 + 1, i2, i3 - 1) + u.load(i1 + 1, i2, i3 + 1);
  const double s3 =
      u.load(i1 - 1, i2 - 1, i3 - 1) + u.load(i1 + 1, i2 - 1, i3 - 1) +
      u.load(i1 - 1, i2 + 1, i3 - 1) + u.load(i1 + 1, i2 + 1, i3 - 1) +
      u.load(i1 - 1, i2 - 1, i3 + 1) + u.load(i1 + 1, i2 - 1, i3 + 1) +
      u.load(i1 - 1, i2 + 1, i3 + 1) + u.load(i1 + 1, i2 + 1, i3 + 1);
  r.store(i1, i2, i3,
          v.load(i1, i2, i3) - a[0] * u.load(i1, i2, i3) - a[1] * s1 -
              a[2] * s2 - a[3] * s3);
}

/// r = v - A u over the interior (paper Fig. 13, left).
template <class R, class V, class U>
void resid(R& r, V& v, U& u, const ResidCoeffs& a) {
  const long n1 = r.n1(), n2 = r.n2(), n3 = r.n3();
  for (long i3 = 1; i3 < n3 - 1; ++i3) {
    for (long i2 = 1; i2 < n2 - 1; ++i2) {
      for (long i1 = 1; i1 < n1 - 1; ++i1) {
        resid_point(r, v, u, a, i1, i2, i3);
      }
    }
  }
}

/// Tiled RESID (paper Fig. 13, right): I2/I1 strip-mined by (t.tj, t.ti),
/// tile loops outermost, I3 untiled.
template <class R, class V, class U>
void resid_tiled(R& r, V& v, U& u, const ResidCoeffs& a, IterTile t) {
  const long n1 = r.n1(), n2 = r.n2(), n3 = r.n3();
  for (long ii2 = 1; ii2 < n2 - 1; ii2 += t.tj) {
    const long i2hi = std::min(ii2 + t.tj, n2 - 1);
    for (long ii1 = 1; ii1 < n1 - 1; ii1 += t.ti) {
      const long i1hi = std::min(ii1 + t.ti, n1 - 1);
      for (long i3 = 1; i3 < n3 - 1; ++i3) {
        for (long i2 = ii2; i2 < i2hi; ++i2) {
          for (long i1 = ii1; i1 < i1hi; ++i1) {
            resid_point(r, v, u, a, i1, i2, i3);
          }
        }
      }
    }
  }
}

}  // namespace rt::kernels
