#pragma once
// Generic stencil engine: execute any rt::core::StencilDesc, original or
// JI-tiled.  This is the library's "apply what the planner planned" path
// for user-defined stencils (see examples/custom_stencil.cpp); the
// hand-written kernels in this directory remain for the paper's exact loop
// nests and for performance.

#include <algorithm>

#include "rt/core/cost.hpp"
#include "rt/core/stencil_desc.hpp"

namespace rt::kernels {

/// out(i,j,k) = sum_q w_q * in(i+di_q, j+dj_q, k+dk_q) over the interior
/// (interior margins sized by the stencil's own reach).
template <class Dst, class Src>
void apply_stencil(Dst& out, Src& in, const rt::core::StencilDesc& d) {
  const long n1 = out.n1(), n2 = out.n2(), n3 = out.n3();
  int r1 = 0, r2 = 0, r3 = 0;
  for (const auto& p : d.points) {
    r1 = std::max({r1, p.di, -p.di});
    r2 = std::max({r2, p.dj, -p.dj});
    r3 = std::max({r3, p.dk, -p.dk});
  }
  for (long k = r3; k < n3 - r3; ++k) {
    for (long j = r2; j < n2 - r2; ++j) {
      for (long i = r1; i < n1 - r1; ++i) {
        double acc = 0.0;
        for (const auto& p : d.points) {
          acc += p.w * in.load(i + p.di, j + p.dj, k + p.dk);
        }
        out.store(i, j, k, acc);
      }
    }
  }
}

/// JI-tiled version (paper Fig. 6 structure) of apply_stencil.
template <class Dst, class Src>
void apply_stencil_tiled(Dst& out, Src& in, const rt::core::StencilDesc& d,
                         rt::core::IterTile t) {
  const long n1 = out.n1(), n2 = out.n2(), n3 = out.n3();
  int r1 = 0, r2 = 0, r3 = 0;
  for (const auto& p : d.points) {
    r1 = std::max({r1, p.di, -p.di});
    r2 = std::max({r2, p.dj, -p.dj});
    r3 = std::max({r3, p.dk, -p.dk});
  }
  for (long jj = r2; jj < n2 - r2; jj += t.tj) {
    const long jhi = std::min(jj + t.tj, n2 - static_cast<long>(r2));
    for (long ii = r1; ii < n1 - r1; ii += t.ti) {
      const long ihi = std::min(ii + t.ti, n1 - static_cast<long>(r1));
      for (long k = r3; k < n3 - r3; ++k) {
        for (long j = jj; j < jhi; ++j) {
          for (long i = ii; i < ihi; ++i) {
            double acc = 0.0;
            for (const auto& p : d.points) {
              acc += p.w * in.load(i + p.di, j + p.dj, k + p.dk);
            }
            out.store(i, j, k, acc);
          }
        }
      }
    }
  }
}

}  // namespace rt::kernels
