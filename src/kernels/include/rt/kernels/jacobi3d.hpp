#pragma once
// 3D Jacobi iteration (paper Figs. 3 and 6): 6-point stencil, original and
// JI-tiled forms, plus the copy-back loop that makes it a "realistic"
// stencil code (Fig. 5, middle).
//
// Kernels are templates over an accessor type providing
//   long n1()/n2()/n3();  T load(i,j,k);  void store(i,j,k,v);
// satisfied by rt::array::Array3D (native) and
// rt::cachesim::TracedArray3D (trace-driven simulation).
// All indices are 0-based; the interior is 1..n-2 in every dimension
// (Fortran's 2..N-1).

#include <algorithm>

#include "rt/core/cost.hpp"

namespace rt::kernels {

using rt::core::IterTile;

/// A(i,j,k) = c * sum of B's six face neighbours.
template <class Dst, class Src>
void jacobi3d(Dst& a, Src& b, double c) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long k = 1; k < n3 - 1; ++k) {
    for (long j = 1; j < n2 - 1; ++j) {
      for (long i = 1; i < n1 - 1; ++i) {
        a.store(i, j, k,
                c * (b.load(i - 1, j, k) + b.load(i + 1, j, k) +
                     b.load(i, j - 1, k) + b.load(i, j + 1, k) +
                     b.load(i, j, k - 1) + b.load(i, j, k + 1)));
      }
    }
  }
}

/// Tiled 3D Jacobi (paper Fig. 6): J and I strip-mined by (t.tj, t.ti) with
/// the tile-controlling loops outermost; K stays untiled so the array tile
/// (TI+2)x(TJ+2)x3 carries all group reuse.
template <class Dst, class Src>
void jacobi3d_tiled(Dst& a, Src& b, double c, IterTile t) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long jj = 1; jj < n2 - 1; jj += t.tj) {
    const long jhi = std::min(jj + t.tj, n2 - 1);
    for (long ii = 1; ii < n1 - 1; ii += t.ti) {
      const long ihi = std::min(ii + t.ti, n1 - 1);
      for (long k = 1; k < n3 - 1; ++k) {
        for (long j = jj; j < jhi; ++j) {
          for (long i = ii; i < ihi; ++i) {
            a.store(i, j, k,
                    c * (b.load(i - 1, j, k) + b.load(i + 1, j, k) +
                         b.load(i, j - 1, k) + b.load(i, j + 1, k) +
                         b.load(i, j, k - 1) + b.load(i, j, k + 1)));
          }
        }
      }
    }
  }
}

/// Interior copy-back b = a (the second nest of the realistic stencil
/// pattern, Fig. 5 middle).
template <class Dst, class Src>
void copy_interior(Dst& dst, Src& src) {
  const long n1 = dst.n1(), n2 = dst.n2(), n3 = dst.n3();
  for (long k = 1; k < n3 - 1; ++k) {
    for (long j = 1; j < n2 - 1; ++j) {
      for (long i = 1; i < n1 - 1; ++i) {
        dst.store(i, j, k, src.load(i, j, k));
      }
    }
  }
}

}  // namespace rt::kernels
