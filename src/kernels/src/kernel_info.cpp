#include "rt/kernels/kernel_info.hpp"

#include <stdexcept>

namespace rt::kernels {

namespace {
// JACOBI: 6 loads of B + 1 store of A; 5 adds + 1 mul.
// REDBLACK: per coloured point 7 loads + 1 store; 5 adds + 1 add + 2 mul.
//           Every interior point is coloured exactly once per full sweep.
// RESID: 27 loads of U + 1 load of V + 1 store of R;
//        (5 + 11 + 7) adds + 4 muls + 4 subs = 31 flops.
// PSINV: 27 loads of R + 1 load + 1 store of U; 31 flops.
const KernelInfo kInfos[] = {
    {KernelId::kJacobi, "JACOBI", rt::core::StencilSpec::jacobi3d(), 7, 6, 2},
    {KernelId::kRedBlack, "REDBLACK", rt::core::StencilSpec::redblack3d(), 8,
     8, 1},
    {KernelId::kResid, "RESID", rt::core::StencilSpec::resid27(), 29, 31, 3},
    {KernelId::kPsinv, "PSINV", rt::core::StencilSpec{"psinv27", 2, 2, 3}, 29,
     31, 2},
};
}  // namespace

const KernelInfo& kernel_info(KernelId id) {
  for (const KernelInfo& k : kInfos) {
    if (k.id == id) return k;
  }
  throw std::invalid_argument("unknown kernel id");
}

const std::vector<KernelId>& all_kernels() {
  // The paper's three evaluation kernels (Table 3 / Figures 14-19).
  static const std::vector<KernelId> kAll = {
      KernelId::kJacobi, KernelId::kRedBlack, KernelId::kResid};
  return kAll;
}

}  // namespace rt::kernels
