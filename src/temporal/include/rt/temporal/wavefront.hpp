#pragma once
// First-class temporal-blocking executors: the multi-core wavefront
// schedules that run a TemporalPlan (rt/core/temporal.hpp) over the
// SIMD row sweeps (rt/simd/row_kernels.hpp).
//
// Both executors compute exactly jacobi3d_pingpong(a, b, c, tsteps) —
// every plane's step-t update is a pure function of step-(t-1) values, and
// each element is written once per step, so any schedule that (1) covers
// each (plane, step) exactly once and (2) never lets a step-t write land
// before every step-(t+1) read of the step-(t-1) value it replaces is
// bit-identical to the serial reference for every thread count, team
// shape and SimdLevel (asserted by tests/temporal_test.cpp).
//
//  * jacobi3d_skew_rows — the slope-1 skew of rt::kernels::
//    jacobi3d_timeskew, parallelised across the planes of each (block,
//    step) stage on a ThreadPool (the PR-4 wavefront), with the inner
//    (j, k)-row sweeps vectorised through rt::simd::jacobi_sweep.
//  * jacobi3d_diamond_rows — the Malas-style two-phase diamond: phase 1
//    runs per-block descending triangles concurrently with NO inter-team
//    synchronisation (blocks only touch their own planes), phase 2 fills
//    the inverted boundary triangles, again team-concurrent because the
//    diamond width W >= 2*tb keeps concurrent triangles plane-disjoint.
//    Each diamond is owned by a team of `plan.team` threads that splits
//    the J range and shares the cache-resident plane window; teams only
//    meet at the two global phase barriers per time chunk.
//
// Thread-spawn failures (real, or injected via RT_GUARD_FAULTS=thread)
// degrade the diamond to however many threads actually started — the
// TemporalRun return reports the width actually used so callers can
// route the run into a recorded skipped row instead of presenting a
// degraded measurement as the requested configuration.

#include "rt/array/array3d.hpp"
#include "rt/core/temporal.hpp"
#include "rt/par/thread_pool.hpp"
#include "rt/simd/simd.hpp"

namespace rt::temporal {

/// What a temporal executor actually ran with (vs. what the plan asked).
struct TemporalRun {
  int threads = 1;  ///< execution width actually used
  int team = 1;     ///< threads per diamond team actually used
};

/// Slope-1 skewed wavefront: plan.tsteps ping-pong Jacobi steps with
/// K-block depth plan.bk, planes of each stage parallel on @p pool
/// (nullptr or a 1-thread pool = serial).  b holds step 0; step s writes
/// (s even ? a : b), like jacobi3d_pingpong.
TemporalRun jacobi3d_skew_rows(rt::par::ThreadPool* pool,
                               rt::array::Array3D<double>& a,
                               rt::array::Array3D<double>& b, double c,
                               const rt::core::TemporalPlan& plan,
                               rt::simd::SimdLevel lvl);

/// Two-phase diamond wavefront: plan.tsteps steps in chunks of plan.tb,
/// diamond width plan.bk, plan.threads total threads in teams of
/// plan.team.  Spawns its own thread set per call (the per-team barrier
/// pattern does not fit ThreadPool's flat parallel_for); spawn failure
/// degrades gracefully and is reported in the returned TemporalRun.
TemporalRun jacobi3d_diamond_rows(rt::array::Array3D<double>& a,
                                  rt::array::Array3D<double>& b, double c,
                                  const rt::core::TemporalPlan& plan,
                                  rt::simd::SimdLevel lvl);

/// First-touch placement matching the PR-5 solver init: zero @p g
/// plane-parallel on @p pool so each page's NUMA home is a thread that
/// will sweep that K range; serial std::fill when @p pool is null.
void first_touch_zero(rt::par::ThreadPool* pool,
                      rt::array::Array3D<double>& g);

}  // namespace rt::temporal
