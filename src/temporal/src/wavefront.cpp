#include "rt/temporal/wavefront.hpp"

#include <algorithm>
#include <barrier>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

#include "rt/guard/fault_injector.hpp"
#include "rt/simd/row_kernels.hpp"

namespace rt::temporal {

namespace {

using rt::array::Array3D;
using rt::core::TemporalPlan;
using rt::simd::SimdLevel;

/// Everything a diamond worker needs, published once spawning settles
/// (workers start before the final thread count — and hence the team
/// shape and barrier sizes — is known).
struct DiamondShared {
  std::mutex m;
  std::condition_variable cv;
  bool ready = false;
  int p = 0;          ///< total threads (spawned workers + caller)
  int teams = 0;      ///< concurrent diamonds
  int team_size = 0;  ///< threads per team; threads >= teams*team_size idle
  std::unique_ptr<std::barrier<>> global;
  std::vector<std::unique_ptr<std::barrier<>>> team_bars;
};

/// One diamond thread.  Schedule (kmax = n3-2 interior planes, width W,
/// chunk of tbc <= tb <= W/2 steps; global step gt writes a when even):
///
///  phase 1 — block d (planes 1+d*W .. min(kmax, (d+1)*W)) runs its
///    descending triangle: local step t sweeps k in [s+t, s+W-1-t].
///    Blocks never touch another block's planes (reads reach one plane
///    past the edge, but only of the opposite-parity array no concurrent
///    stage writes at a conflicting step), so teams run with no global
///    synchronisation; the per-team barrier orders step t before t+1
///    because team members split the J range of the same planes.
///  phase 2 — boundary d (plane 1+d*W, d = 0..nblocks inclusive) fills
///    the inverted triangle: step t sweeps k in [max(1,b-t), b+t-1].
///    Edge reads (r = t-1 and W-t) are exactly the phase-1 finals, and
///    W >= 2*tb keeps concurrent triangles plane-disjoint.
///
/// Every (plane, step) is covered exactly once — the within-block offsets
/// r = (k-1) mod W partition [0, W-1] as [0,t-1] | [t,W-1-t] | [W-t,W-1].
void diamond_thread(int idx, DiamondShared& sh, Array3D<double>& a,
                    Array3D<double>& b, double c, const TemporalPlan& plan,
                    SimdLevel lvl) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  const long kmax = n3 - 2;
  const long w = std::max(plan.bk, 2L);
  const int tb = std::max(plan.tb, 1);
  const long nblocks = (kmax + w - 1) / w;

  const int g = idx / sh.team_size;
  const int m = idx % sh.team_size;
  const bool in_team = g < sh.teams;
  // Static J split within the team: member m owns [jlo, jhi) of the
  // interior [1, n2-1).  Empty slices still reach every barrier.
  const long jtot = n2 - 2;
  const long jlo = 1 + (jtot * m) / sh.team_size;
  const long jhi = 1 + (jtot * (m + 1)) / sh.team_size;

  for (int t0 = 0; t0 < plan.tsteps; t0 += tb) {
    const int tbc = std::min(tb, plan.tsteps - t0);
    for (int t = 0; t < tbc; ++t) {
      if (in_team) {
        const int gt = t0 + t;
        Array3D<double>& dst = (gt % 2 == 0) ? a : b;
        const Array3D<double>& src = (gt % 2 == 0) ? b : a;
        for (long d = g; d < nblocks; d += sh.teams) {
          const long s = 1 + d * w;
          const long lo = s + t;
          const long hi = std::min(kmax, s + w - 1 - t);
          if (hi >= lo) {
            rt::simd::jacobi_sweep(dst, src, c, 1, n1 - 1, jlo, jhi, lo,
                                   hi + 1, lvl);
          }
        }
        sh.team_bars[static_cast<std::size_t>(g)]->arrive_and_wait();
      }
    }
    sh.global->arrive_and_wait();
    for (int t = 1; t < tbc; ++t) {
      if (in_team) {
        const int gt = t0 + t;
        Array3D<double>& dst = (gt % 2 == 0) ? a : b;
        const Array3D<double>& src = (gt % 2 == 0) ? b : a;
        for (long d = g; d <= nblocks; d += sh.teams) {
          const long bnd = 1 + d * w;
          const long lo = std::max(1L, bnd - t);
          const long hi = std::min(kmax, bnd + t - 1);
          if (hi >= lo) {
            rt::simd::jacobi_sweep(dst, src, c, 1, n1 - 1, jlo, jhi, lo,
                                   hi + 1, lvl);
          }
        }
        sh.team_bars[static_cast<std::size_t>(g)]->arrive_and_wait();
      }
    }
    sh.global->arrive_and_wait();
  }
}

}  // namespace

TemporalRun jacobi3d_skew_rows(rt::par::ThreadPool* pool, Array3D<double>& a,
                               Array3D<double>& b, double c,
                               const TemporalPlan& plan, SimdLevel lvl) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  const long bk = std::max(plan.bk, 1L);
  TemporalRun run;
  run.threads = pool ? pool->num_threads() : 1;
  if (plan.tsteps <= 0) return run;
  for (long kb = 1; kb < (n3 - 2) + plan.tsteps; kb += bk) {
    for (int t = 0; t < plan.tsteps; ++t) {
      const long lo = std::max(1L, kb - t);
      const long hi = std::min(n3 - 2, kb + bk - 1 - t);
      if (hi < lo) continue;
      Array3D<double>& dst = (t % 2 == 0) ? a : b;
      const Array3D<double>& src = (t % 2 == 0) ? b : a;
      if (run.threads > 1) {
        pool->parallel_for(hi - lo + 1, [&](long kk) {
          rt::simd::jacobi_sweep(dst, src, c, 1, n1 - 1, 1, n2 - 1, lo + kk,
                                 lo + kk + 1, lvl);
        });  // barrier: stage (kb, t) completes before (kb, t + 1)
      } else {
        rt::simd::jacobi_sweep(dst, src, c, 1, n1 - 1, 1, n2 - 1, lo, hi + 1,
                               lvl);
      }
    }
  }
  return run;
}

TemporalRun jacobi3d_diamond_rows(Array3D<double>& a, Array3D<double>& b,
                                  double c, const TemporalPlan& plan,
                                  SimdLevel lvl) {
  TemporalRun run;
  if (plan.tsteps <= 0) return run;

  DiamondShared sh;
  const int requested = std::max(plan.threads, 1);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(requested - 1));
  auto& inj = rt::guard::FaultInjector::instance();
  for (int i = 1; i < requested; ++i) {
    if (rt::guard::FaultInjector::armed(rt::guard::FaultKind::kThreadSpawn) &&
        inj.should_fail(rt::guard::FaultKind::kThreadSpawn)) {
      break;
    }
    try {
      workers.emplace_back([i, &sh, &a, &b, c, &plan, lvl] {
        {
          std::unique_lock<std::mutex> lock(sh.m);
          sh.cv.wait(lock, [&] { return sh.ready; });
        }
        diamond_thread(i, sh, a, b, c, plan, lvl);
      });
    } catch (const std::system_error&) {
      break;
    }
  }

  // Team shape from the width that actually materialised; spare threads
  // beyond teams*team_size only participate in the global barriers.
  const int p = static_cast<int>(workers.size()) + 1;
  sh.p = p;
  sh.team_size = std::clamp(plan.team, 1, p);
  sh.teams = std::max(1, p / sh.team_size);
  sh.global = std::make_unique<std::barrier<>>(p);
  for (int g = 0; g < sh.teams; ++g) {
    sh.team_bars.push_back(std::make_unique<std::barrier<>>(sh.team_size));
  }
  {
    std::lock_guard<std::mutex> lock(sh.m);
    sh.ready = true;
  }
  sh.cv.notify_all();

  diamond_thread(0, sh, a, b, c, plan, lvl);
  for (auto& w : workers) w.join();
  run.threads = p;
  run.team = sh.team_size;
  return run;
}

void first_touch_zero(rt::par::ThreadPool* pool, Array3D<double>& g) {
  double* base = g.data();
  const long plane = g.dims().plane_stride();
  if (pool == nullptr || pool->num_threads() == 1) {
    std::fill(base, base + g.n3() * plane, 0.0);
    return;
  }
  pool->parallel_for(g.n3(), [&](long k) {
    std::fill(base + k * plane, base + (k + 1) * plane, 0.0);
  });
}

}  // namespace rt::temporal
